//! Structural concurrency relation (§V-A of the paper).
//!
//! The Kovalyov–Esparza style fixpoint computes the binary concurrency
//! relation `‖` over places and transitions without building the
//! reachability graph. For **live and safe free-choice** nets (without
//! self-loop transitions) the relation is exact; for other classes it is a
//! conservative over-approximation of behavioural concurrency, which is the
//! safe direction for synthesis (Def. 2 of the paper is deliberately
//! conservative).
//!
//! Rules (worklist fixpoint over distinct-node pairs):
//!
//! 1. places simultaneously marked at `m0` are pairwise concurrent;
//! 2. for every (live) transition `t`, the places of `t•` are pairwise
//!    concurrent;
//! 3. if every place of `•t` is concurrent with node `x`, then `t ‖ x` and
//!    every place of `t•` is concurrent with `x`.

use crate::net::{Node, PetriNet, PlaceId, TransId};
use si_boolean::Bits;

/// The symmetric concurrency relation over the nodes of a net.
///
/// # Examples
///
/// ```
/// use si_petri::{ConcurrencyRelation, PetriNet};
///
/// let mut b = PetriNet::builder();
/// let p0 = b.add_place("p0", true);
/// let p1 = b.add_place("p1", false);
/// let p2 = b.add_place("p2", false);
/// let t = b.add_transition("fork");
/// b.arc_pt(p0, t);
/// b.arc_tp(t, p1);
/// b.arc_tp(t, p2);
/// let net = b.build();
/// let cr = ConcurrencyRelation::compute(&net);
/// assert!(cr.places(p1, p2));
/// assert!(!cr.places(p0, p1));
/// ```
#[derive(Clone, Debug)]
pub struct ConcurrencyRelation {
    np: usize,
    n: usize,
    /// Row i = set of nodes concurrent with node i (global node index:
    /// places first, then transitions).
    rows: Vec<Bits>,
}

impl ConcurrencyRelation {
    /// Computes the structural concurrency relation of `net` with the
    /// word-parallel engine.
    ///
    /// Rule 3's premise `•t ⊆ R(x)` is one [`Bits::is_subset`] word test
    /// against the preset mask of `t`, and the fixpoint is driven by a
    /// worklist of *rows* (nodes whose concurrency set grew) instead of the
    /// original O(n·t) pair seeding plus per-pair worklist — each dirty row
    /// is rechecked against all transitions in one batch.
    ///
    /// Liveness of every transition is assumed (rule 2); dead transitions
    /// would make the result more conservative, never less.
    pub fn compute(net: &PetriNet) -> Self {
        let np = net.place_count();
        let nt = net.transition_count();
        let n = np + nt;
        let mut rows = vec![Bits::zeros(n); n];

        // Sparse preset masks: the (word, bits) pairs of •t in node space
        // (places occupy indices 0..np). Presets are tiny, so testing
        // `•t ⊆ R(x)` against only these words beats both the per-place
        // scan and a full-width subset test.
        let pre_words: Vec<Vec<(usize, u64)>> = net
            .transitions()
            .map(|t| {
                let mask = Bits::from_ones(n, net.pre_t(t).iter().map(|p| p.index()));
                mask.as_words()
                    .iter()
                    .enumerate()
                    .filter(|&(_, &w)| w != 0)
                    .map(|(i, &w)| (i, w))
                    .collect()
            })
            .collect();

        // Row worklist: x is queued when R(x) gained a member since x was
        // last scanned. `pending[x]` holds exactly those newly gained
        // members — rule 3's premise `•t ⊆ R(x)` can only *become* true
        // when a preset place lands in `pending[x]`, so each batch scan
        // filters transitions against the delta, not the whole row.
        let mut pending = vec![Bits::zeros(n); n];
        let mut queued = vec![false; n];
        let mut queue: Vec<usize> = Vec::with_capacity(n);
        macro_rules! add_pair {
            ($a:expr, $b:expr) => {{
                let (a, b) = ($a, $b);
                if a != b && !rows[a].get(b) {
                    rows[a].set(b, true);
                    rows[b].set(a, true);
                    pending[a].set(b, true);
                    pending[b].set(a, true);
                    for x in [a, b] {
                        if !queued[x] {
                            queued[x] = true;
                            queue.push(x);
                        }
                    }
                }
            }};
        }

        // Rule 1: initially co-marked places.
        let m0 = net.initial_marking();
        let marked: Vec<usize> = m0.iter_ones().collect();
        for (i, &a) in marked.iter().enumerate() {
            for &b in &marked[i + 1..] {
                add_pair!(a, b);
            }
        }
        // Rule 2: outputs of each transition.
        for t in net.transitions() {
            let outs = net.post_t(t);
            for (i, &a) in outs.iter().enumerate() {
                for &b in &outs[i + 1..] {
                    add_pair!(a.index(), b.index());
                }
            }
        }
        // Rule 3 closure, batched per dirty row. Every bit present at this
        // point is in some row's pending set, so rule-1/2 seeds are
        // rescanned exactly like later fixpoint additions. The premise
        // `•t ⊆ R(x)` can only *become* true when a place of •t lands in
        // R(x), so each batch walks the delta's place bits y and rechecks
        // only `y• = post_p(y)` — the word-parallel premise test then runs
        // on the handful of preset words.
        let mut delta = Bits::zeros(n);
        while let Some(x) = queue.pop() {
            queued[x] = false;
            // Snapshot and clear the delta: pairs added while scanning x
            // re-queue it with a fresh delta.
            std::mem::swap(&mut pending[x], &mut delta);
            let (xw, xb) = (x / 64, 1u64 << (x % 64));
            for y in delta.iter_ones() {
                if y >= np {
                    continue; // only place bits can complete a preset
                }
                for &t in net.post_p(PlaceId(y as u32)) {
                    let ti = t.index();
                    let tnode = np + ti;
                    if tnode == x || rows[tnode].get(x) {
                        continue;
                    }
                    let pre = &pre_words[ti];
                    // x ∈ •t would require (x, x) ∈ R — reject.
                    if pre.iter().any(|&(wi, wm)| wi == xw && wm & xb != 0) {
                        continue;
                    }
                    let row = rows[x].as_words();
                    if pre.iter().all(|&(wi, wm)| row[wi] & wm == wm) {
                        add_pair!(tnode, x);
                        for q in net.post_t(t) {
                            add_pair!(q.index(), x);
                        }
                    }
                }
            }
            delta.clear();
        }

        ConcurrencyRelation { np, n, rows }
    }

    /// The original pairwise-worklist implementation, kept verbatim as the
    /// equivalence oracle for the batched fixpoint (both compute the least
    /// fixpoint of the same rules, so the relations must match exactly).
    pub fn compute_naive(net: &PetriNet) -> Self {
        let np = net.place_count();
        let nt = net.transition_count();
        let n = np + nt;
        let mut rows = vec![Bits::zeros(n); n];
        let mut work: Vec<(usize, usize)> = Vec::new();

        let add = |rows: &mut Vec<Bits>, work: &mut Vec<(usize, usize)>, a: usize, b: usize| {
            if a != b && !rows[a].get(b) {
                rows[a].set(b, true);
                rows[b].set(a, true);
                work.push((a, b));
            }
        };

        // Rule 1: initially co-marked places.
        let m0 = net.initial_marking();
        let marked: Vec<usize> = m0.iter_ones().collect();
        for (i, &a) in marked.iter().enumerate() {
            for &b in &marked[i + 1..] {
                add(&mut rows, &mut work, a, b);
            }
        }
        // Rule 2: outputs of each transition.
        for t in net.transitions() {
            let outs = net.post_t(t);
            for (i, &a) in outs.iter().enumerate() {
                for &b in &outs[i + 1..] {
                    add(&mut rows, &mut work, a.index(), b.index());
                }
            }
        }

        // Rule 3 closure, driven by a worklist of newly added pairs.
        // When (y, x) is added and y is a place, any transition t with
        // y ∈ •t may now satisfy •t ⊆ row(x).
        let tindex = |t: TransId| np + t.index();
        // Seed: also try every transition against every node once, to cover
        // transitions with presets made concurrent purely by rules 1/2.
        let mut pending: Vec<(TransId, usize)> = Vec::new();
        for t in net.transitions() {
            for x in 0..n {
                pending.push((t, x));
            }
        }
        loop {
            let mut progressed = false;
            // Drain structured worklist into candidate (t, x) re-checks.
            while let Some((a, b)) = work.pop() {
                for &(y, x) in &[(a, b), (b, a)] {
                    if y < np {
                        for &t in net.post_p(PlaceId(y as u32)) {
                            pending.push((t, x));
                        }
                    }
                }
            }
            while let Some((t, x)) = pending.pop() {
                let ti = tindex(t);
                if ti == x || rows[ti].get(x) {
                    continue;
                }
                let pre = net.pre_t(t);
                if pre.is_empty() {
                    continue; // source transitions are not handled structurally
                }
                if pre.iter().all(|p| rows[p.index()].get(x) || p.index() == x) {
                    // p.index() == x would mean x ∈ •t: (x,x) ∉ R, so reject.
                    if pre.iter().any(|p| p.index() == x) {
                        continue;
                    }
                    add(&mut rows, &mut work, ti, x);
                    for q in net.post_t(t) {
                        add(&mut rows, &mut work, q.index(), x);
                    }
                    progressed = true;
                }
            }
            if work.is_empty() && !progressed {
                break;
            }
        }

        ConcurrencyRelation { np, n, rows }
    }

    fn idx(&self, node: Node) -> usize {
        match node {
            Node::Place(p) => p.index(),
            Node::Trans(t) => self.np + t.index(),
        }
    }

    /// Concurrency of two arbitrary nodes.
    pub fn nodes(&self, a: Node, b: Node) -> bool {
        self.rows[self.idx(a)].get(self.idx(b))
    }

    /// Concurrency of two places (`∃ m ⊇ {p, q}` behaviourally).
    pub fn places(&self, p: PlaceId, q: PlaceId) -> bool {
        self.rows[p.index()].get(q.index())
    }

    /// Concurrency of two transitions.
    pub fn transitions(&self, a: TransId, b: TransId) -> bool {
        self.rows[self.np + a.index()].get(self.np + b.index())
    }

    /// Concurrency of a place and a transition: `t` can fire while `p`
    /// remains marked.
    pub fn place_transition(&self, p: PlaceId, t: TransId) -> bool {
        self.rows[p.index()].get(self.np + t.index())
    }

    /// All transitions concurrent with place `p`.
    pub fn transitions_concurrent_with_place(&self, p: PlaceId) -> Vec<TransId> {
        (0..(self.n - self.np))
            .filter(|&ti| self.rows[p.index()].get(self.np + ti))
            .map(|ti| TransId(ti as u32))
            .collect()
    }

    /// All places concurrent with place `p`.
    pub fn places_concurrent_with_place(&self, p: PlaceId) -> Vec<PlaceId> {
        (0..self.np)
            .filter(|&q| self.rows[p.index()].get(q))
            .map(|q| PlaceId(q as u32))
            .collect()
    }

    /// Number of concurrent pairs (both orders counted once).
    pub fn pair_count(&self) -> usize {
        self.rows.iter().map(Bits::count_ones).sum::<usize>() / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach::ReachabilityGraph;

    fn fork_join() -> PetriNet {
        let mut b = PetriNet::builder();
        let p0 = b.add_place("p0", true);
        let p1 = b.add_place("p1", false);
        let p2 = b.add_place("p2", false);
        let p3 = b.add_place("p3", false);
        let p4 = b.add_place("p4", false);
        let t0 = b.add_transition("fork");
        let t1 = b.add_transition("left");
        let t2 = b.add_transition("right");
        let t3 = b.add_transition("join");
        b.arc_pt(p0, t0);
        b.arc_tp(t0, p1);
        b.arc_tp(t0, p2);
        b.arc_pt(p1, t1);
        b.arc_tp(t1, p3);
        b.arc_pt(p2, t2);
        b.arc_tp(t2, p4);
        b.arc_pt(p3, t3);
        b.arc_pt(p4, t3);
        b.arc_tp(t3, p0);
        b.build()
    }

    #[test]
    fn matches_behaviour_on_fork_join() {
        let net = fork_join();
        let cr = ConcurrencyRelation::compute(&net);
        let rg = ReachabilityGraph::build(&net, 1000).unwrap();
        for p in net.places() {
            for q in net.places() {
                if p != q {
                    assert_eq!(
                        cr.places(p, q),
                        rg.places_concurrent(p, q),
                        "place pair {p} {q}"
                    );
                }
            }
            for t in net.transitions() {
                assert_eq!(
                    cr.place_transition(p, t),
                    rg.place_transition_concurrent(&net, p, t),
                    "pair {p} {t}"
                );
            }
        }
        for a in net.transitions() {
            for b in net.transitions() {
                if a != b {
                    assert_eq!(
                        cr.transitions(a, b),
                        rg.transitions_concurrent(&net, a, b),
                        "trans pair {a} {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_matches_naive() {
        let net = fork_join();
        let a = ConcurrencyRelation::compute(&net);
        let b = ConcurrencyRelation::compute_naive(&net);
        assert_eq!(a.pair_count(), b.pair_count());
        for i in 0..a.n {
            assert_eq!(a.rows[i], b.rows[i], "row {i}");
        }
    }

    #[test]
    fn sequential_ring_has_no_concurrency() {
        let mut b = PetriNet::builder();
        let p0 = b.add_place("p0", true);
        let p1 = b.add_place("p1", false);
        let t0 = b.add_transition("t0");
        let t1 = b.add_transition("t1");
        b.arc_pt(p0, t0);
        b.arc_tp(t0, p1);
        b.arc_pt(p1, t1);
        b.arc_tp(t1, p0);
        let net = b.build();
        let cr = ConcurrencyRelation::compute(&net);
        assert_eq!(cr.pair_count(), 0);
    }

    #[test]
    fn choice_branches_not_concurrent() {
        // p0 -> t0|t1 -> p1|p2 -> ... -> join back. Branches are alternatives.
        let mut b = PetriNet::builder();
        let p0 = b.add_place("p0", true);
        let p1 = b.add_place("p1", false);
        let p2 = b.add_place("p2", false);
        let t0 = b.add_transition("t0");
        let t1 = b.add_transition("t1");
        let t2 = b.add_transition("t2");
        let t3 = b.add_transition("t3");
        b.arc_pt(p0, t0);
        b.arc_pt(p0, t1);
        b.arc_tp(t0, p1);
        b.arc_tp(t1, p2);
        b.arc_pt(p1, t2);
        b.arc_tp(t2, p0);
        b.arc_pt(p2, t3);
        b.arc_tp(t3, p0);
        let net = b.build();
        let cr = ConcurrencyRelation::compute(&net);
        assert!(!cr.places(PlaceId(1), PlaceId(2)));
        assert!(!cr.transitions(TransId(0), TransId(1)));
    }

    #[test]
    fn helper_listings() {
        let net = fork_join();
        let cr = ConcurrencyRelation::compute(&net);
        let left = net.transition_by_name("left").unwrap();
        let p2 = net.place_by_name("p2").unwrap();
        assert!(cr.transitions_concurrent_with_place(p2).contains(&left));
        assert!(cr
            .places_concurrent_with_place(net.place_by_name("p1").unwrap())
            .contains(&p2));
        assert!(cr.nodes(Node::Place(p2), Node::Trans(left)));
    }
}
