//! Resource governance for long-running explorations.
//!
//! Every unbounded computation in the workspace — state-space exploration,
//! verification, conformance products, CSC candidate search — accepts a
//! [`Budget`]: a state cap, an approximate byte ceiling, a wall-clock
//! deadline and a cooperative [`CancelToken`]. Exhausting any of them does
//! **not** abort the work: the explorers return a *partial* result tagged
//! with an [`InterruptReason`], so callers can report "no violation in the
//! N states explored" instead of throwing the exploration away.
//!
//! Governance checks are amortized: the explorers consult the soft limits
//! (deadline / cancellation / bytes) once per batch of states, not per
//! state, so an unbounded budget costs one branch per batch.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation handle: cloneable, thread-safe, one-way.
///
/// Cancellation is *cooperative* — the explorers poll the token at their
/// amortized governance checkpoints and wind down gracefully, returning
/// the states explored so far.
///
/// # Examples
///
/// ```
/// use si_petri::CancelToken;
///
/// let token = CancelToken::new();
/// let observer = token.clone();
/// assert!(!observer.is_cancelled());
/// token.cancel();
/// assert!(observer.is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; safe to call from any thread
    /// (and from a signal handler — it is a single atomic store).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

impl PartialEq for CancelToken {
    /// Tokens compare by identity: two tokens are equal iff they share
    /// the same underlying flag.
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.flag, &other.flag)
    }
}

impl Eq for CancelToken {}

/// Why a governed computation stopped before exhausting its state space.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum InterruptReason {
    /// The state cap ([`Budget::cap`]) was reached.
    CapExceeded,
    /// The wall-clock deadline ([`Budget::deadline`]) passed.
    DeadlineExpired,
    /// The [`CancelToken`] was cancelled.
    Cancelled,
    /// The approximate byte ceiling ([`Budget::max_bytes`]) was reached.
    MemoryExhausted,
}

impl InterruptReason {
    /// A stable machine-readable name (used by `sisyn --json`).
    pub fn as_str(self) -> &'static str {
        match self {
            InterruptReason::CapExceeded => "cap-exceeded",
            InterruptReason::DeadlineExpired => "deadline-expired",
            InterruptReason::Cancelled => "cancelled",
            InterruptReason::MemoryExhausted => "memory-exhausted",
        }
    }
}

impl std::fmt::Display for InterruptReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match self {
            InterruptReason::CapExceeded => "state cap exceeded",
            InterruptReason::DeadlineExpired => "deadline expired",
            InterruptReason::Cancelled => "cancelled",
            InterruptReason::MemoryExhausted => "memory budget exhausted",
        };
        f.write_str(what)
    }
}

/// An interrupted analysis: why it stopped and how far it got. This is a
/// *verdict qualifier*, not a failure — "no violation in the
/// `states_explored` states explored".
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Interrupt {
    /// Which budget dimension ran out.
    pub reason: InterruptReason,
    /// States explored before the interruption (the partial result covers
    /// exactly these).
    pub states_explored: usize,
    /// Wall time the computation ran before the interruption.
    pub elapsed: Duration,
}

impl std::fmt::Display for Interrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} after exploring {} states in {:.3}s",
            self.reason,
            self.states_explored,
            self.elapsed.as_secs_f64()
        )
    }
}

/// Resource budget of a governed computation.
///
/// # Examples
///
/// ```
/// use si_petri::{Budget, CancelToken};
/// use std::time::Duration;
///
/// let b = Budget::with_cap(1_000_000)
///     .timeout(Duration::from_secs(30))
///     .cancel(CancelToken::new());
/// assert_eq!(b.cap, 1_000_000);
/// assert!(b.deadline.is_some());
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Budget {
    /// Maximum number of states to intern (`usize::MAX` = unbounded).
    pub cap: usize,
    /// Approximate ceiling on bytes held by the exploration (state arena +
    /// interner tables); accounting is per-batch and approximate.
    pub max_bytes: Option<usize>,
    /// Wall-clock instant after which the computation winds down.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation handle.
    pub cancel: Option<CancelToken>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            cap: usize::MAX,
            max_bytes: None,
            deadline: None,
            cancel: None,
        }
    }
}

impl Budget {
    /// An unbounded budget (cap `usize::MAX`, no deadline, no token).
    pub fn unbounded() -> Self {
        Budget::default()
    }

    /// A budget bounded only by a state cap.
    pub fn with_cap(cap: usize) -> Self {
        Budget {
            cap,
            ..Budget::default()
        }
    }

    /// Sets the state cap.
    pub fn cap(mut self, cap: usize) -> Self {
        self.cap = cap;
        self
    }

    /// Sets the approximate byte ceiling.
    pub fn max_bytes(mut self, bytes: usize) -> Self {
        self.max_bytes = Some(bytes);
        self
    }

    /// Sets an absolute wall-clock deadline.
    pub fn deadline(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Sets the deadline `d` from now.
    pub fn timeout(self, d: Duration) -> Self {
        self.deadline(Instant::now() + d)
    }

    /// Attaches a cancellation token.
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Whether any *soft* limit (deadline, token, bytes) is configured.
    /// The explorers skip the per-batch governance check entirely when
    /// this is `false` — the cap alone is enforced per interned state.
    pub fn has_soft_limits(&self) -> bool {
        self.max_bytes.is_some() || self.deadline.is_some() || self.cancel.is_some()
    }

    /// The amortized governance check: cancellation, then deadline, then
    /// bytes. Returns the first exhausted dimension, if any. Callers pass
    /// their approximate live byte count (`0` is fine when no byte
    /// ceiling is set).
    pub fn check_soft(&self, approx_bytes: usize) -> Option<InterruptReason> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Some(InterruptReason::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(InterruptReason::DeadlineExpired);
            }
        }
        if let Some(max) = self.max_bytes {
            if approx_bytes >= max {
                return Some(InterruptReason::MemoryExhausted);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_shared() {
        let t = CancelToken::new();
        let u = t.clone();
        t.cancel();
        assert!(u.is_cancelled());
        assert_eq!(t, u);
        assert_ne!(t, CancelToken::new());
    }

    #[test]
    fn soft_checks_fire_in_order() {
        let b = Budget::unbounded();
        assert!(!b.has_soft_limits());
        assert_eq!(b.check_soft(usize::MAX), None);

        let b = Budget::unbounded().max_bytes(100);
        assert_eq!(b.check_soft(99), None);
        assert_eq!(b.check_soft(100), Some(InterruptReason::MemoryExhausted));

        let b = Budget::unbounded().deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(b.check_soft(0), Some(InterruptReason::DeadlineExpired));

        let token = CancelToken::new();
        let b = Budget::unbounded()
            .cancel(token.clone())
            .deadline(Instant::now() - Duration::from_millis(1));
        // Cancellation outranks the (already expired) deadline.
        token.cancel();
        assert_eq!(b.check_soft(0), Some(InterruptReason::Cancelled));
    }
}
