//! Place and transition invariants (semiflows) via the Farkas algorithm.
//!
//! The paper computes SM-components by "solving a linear programming model"
//! over the incidence matrix (reference [18], Lautenbach's linear-algebraic
//! techniques). This module provides that algebra directly:
//!
//! * a **P-semiflow** is a non-negative integer vector `y` with
//!   `yᵀ·C = 0` — the weighted token count `y·M` is constant over all
//!   reachable markings; the support of every one-token SM-component is a
//!   P-semiflow with weights 1;
//! * a **T-semiflow** is a non-negative `x` with `C·x = 0` — firing every
//!   transition `x[t]` times reproduces the marking (the cyclic behaviour
//!   of live STGs).
//!
//! The classic Farkas elimination produces the minimal-support semiflows;
//! it is worst-case exponential but comfortable at STG sizes.

use crate::net::{PetriNet, PlaceId, TransId};

/// A non-negative integer vector over places (P) or transitions (T).
pub type Semiflow = Vec<u64>;

/// The incidence matrix entry `C[p][t] = |t• ∩ {p}| − |•t ∩ {p}|`.
fn incidence(net: &PetriNet, p: PlaceId, t: TransId) -> i64 {
    let produces = net.post_t(t).contains(&p) as i64;
    let consumes = net.pre_t(t).contains(&p) as i64;
    produces - consumes
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn normalize(v: &mut [u64]) {
    let g = v.iter().copied().filter(|&x| x > 0).fold(0, gcd);
    if g > 1 {
        for x in v.iter_mut() {
            *x /= g;
        }
    }
}

/// Core Farkas elimination over an `n_rows × n_cols` integer matrix `m`,
/// with identity tableau `id` (one row per original row). Returns the
/// minimal-support non-negative annullers of the column space.
fn farkas(mut m: Vec<Vec<i64>>, mut id: Vec<Vec<u64>>, n_cols: usize) -> Vec<Semiflow> {
    const ROW_CAP: usize = 4096;
    for col in 0..n_cols {
        let mut next_m: Vec<Vec<i64>> = Vec::new();
        let mut next_id: Vec<Vec<u64>> = Vec::new();
        // Rows already zero in this column survive unchanged.
        for (row, idrow) in m.iter().zip(&id) {
            if row[col] == 0 {
                next_m.push(row.clone());
                next_id.push(idrow.clone());
            }
        }
        // Combine each positive row with each negative row.
        let pos: Vec<usize> = (0..m.len()).filter(|&i| m[i][col] > 0).collect();
        let neg: Vec<usize> = (0..m.len()).filter(|&i| m[i][col] < 0).collect();
        for &i in &pos {
            for &j in &neg {
                if next_m.len() >= ROW_CAP {
                    break;
                }
                let a = m[i][col].unsigned_abs();
                let b = m[j][col].unsigned_abs();
                let new_row: Vec<i64> = (0..n_cols)
                    .map(|k| m[i][k] * b as i64 + m[j][k] * a as i64)
                    .collect();
                let mut new_id: Vec<u64> = (0..id[i].len())
                    .map(|k| id[i][k] * b + id[j][k] * a)
                    .collect();
                normalize(&mut new_id);
                // Minimality: drop rows whose support strictly contains an
                // existing row's support.
                let support = |v: &[u64]| -> Vec<usize> {
                    v.iter()
                        .enumerate()
                        .filter(|&(_, &x)| x > 0)
                        .map(|(k, _)| k)
                        .collect()
                };
                let ns = support(&new_id);
                let dominated = next_id.iter().any(|o| {
                    let os = support(o);
                    os.iter().all(|k| ns.contains(k)) && os.len() < ns.len() || os == ns
                });
                if !dominated {
                    next_m.push(new_row);
                    next_id.push(new_id);
                }
            }
        }
        m = next_m;
        id = next_id;
    }
    // Survivors annul every column.
    id.into_iter()
        .filter(|v| v.iter().any(|&x| x > 0))
        .collect()
}

/// Minimal-support P-semiflows of the net.
pub fn p_semiflows(net: &PetriNet) -> Vec<Semiflow> {
    let np = net.place_count();
    let nt = net.transition_count();
    let m: Vec<Vec<i64>> = net
        .places()
        .map(|p| net.transitions().map(|t| incidence(net, p, t)).collect())
        .collect();
    let id: Vec<Vec<u64>> = (0..np)
        .map(|i| (0..np).map(|j| u64::from(i == j)).collect())
        .collect();
    farkas(m, id, nt)
}

/// Minimal-support T-semiflows of the net.
pub fn t_semiflows(net: &PetriNet) -> Vec<Semiflow> {
    let np = net.place_count();
    let nt = net.transition_count();
    let m: Vec<Vec<i64>> = net
        .transitions()
        .map(|t| net.places().map(|p| incidence(net, p, t)).collect())
        .collect();
    let id: Vec<Vec<u64>> = (0..nt)
        .map(|i| (0..nt).map(|j| u64::from(i == j)).collect())
        .collect();
    farkas(m, id, np)
}

/// Checks `yᵀ·C = 0` for a place vector.
pub fn is_p_invariant(net: &PetriNet, y: &[u64]) -> bool {
    net.transitions().all(|t| {
        let mut sum = 0i64;
        for p in net.places() {
            sum += y[p.index()] as i64 * incidence(net, p, t);
        }
        sum == 0
    })
}

/// The weighted token count `y·M` of a marking.
pub fn weighted_tokens(y: &[u64], marking: &crate::net::Marking) -> u64 {
    marking.iter_ones().map(|i| y[i]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach::ReachabilityGraph;
    use crate::sm::sm_cover;

    fn fork_join() -> PetriNet {
        let mut b = PetriNet::builder();
        let p0 = b.add_place("p0", true);
        let p1 = b.add_place("p1", false);
        let p2 = b.add_place("p2", false);
        let f = b.add_transition("fork");
        let j = b.add_transition("join");
        b.arc_pt(p0, f);
        b.arc_tp(f, p1);
        b.arc_tp(f, p2);
        b.arc_pt(p1, j);
        b.arc_pt(p2, j);
        b.arc_tp(j, p0);
        b.build()
    }

    #[test]
    fn fork_join_p_semiflows() {
        let net = fork_join();
        let flows = p_semiflows(&net);
        // {p0, p1} and {p0, p2} are the minimal P-invariants.
        assert_eq!(flows.len(), 2);
        for y in &flows {
            assert!(is_p_invariant(&net, y));
            assert_eq!(y.iter().filter(|&&x| x > 0).count(), 2);
            assert!(y[0] == 1, "p0 in every invariant");
        }
    }

    #[test]
    fn sm_component_supports_are_p_semiflows() {
        let net = fork_join();
        for sm in sm_cover(&net).unwrap() {
            let y: Vec<u64> = net
                .places()
                .map(|p| u64::from(sm.contains_place(p)))
                .collect();
            assert!(is_p_invariant(&net, &y));
        }
    }

    #[test]
    fn weighted_tokens_invariant_over_reachability() {
        let net = fork_join();
        let rg = ReachabilityGraph::build(&net, 100).unwrap();
        for y in p_semiflows(&net) {
            let expected = weighted_tokens(&y, &net.initial_marking());
            for s in rg.states() {
                assert_eq!(weighted_tokens(&y, rg.marking(s)), expected);
            }
        }
    }

    #[test]
    fn t_semiflow_of_a_ring_fires_everything_once() {
        let mut b = PetriNet::builder();
        let p0 = b.add_place("p0", true);
        let p1 = b.add_place("p1", false);
        let t0 = b.add_transition("t0");
        let t1 = b.add_transition("t1");
        b.arc_pt(p0, t0);
        b.arc_tp(t0, p1);
        b.arc_pt(p1, t1);
        b.arc_tp(t1, p0);
        let net = b.build();
        let flows = t_semiflows(&net);
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0], vec![1, 1]);
    }

    #[test]
    fn fork_join_t_semiflow() {
        let net = fork_join();
        let flows = t_semiflows(&net);
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0], vec![1, 1]); // fire fork and join once
    }
}
