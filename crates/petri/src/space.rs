//! The generic state-space layer: one lazy-successor abstraction, one
//! sequential explorer and one sharded explorer behind every traversal.
//!
//! Reachability-graph construction, speed-independence verification and
//! product-automaton conformance checking are all the same computation —
//! enumerate the states reachable from an initial packed state, watch for
//! violations along the way — yet they historically each hand-rolled their
//! own loop, and only reachability got the sharded parallel engine. This
//! module factors the traversal out:
//!
//! * [`StateSpace`] — a state space as data: a packed-word state format,
//!   an [`initial`](StateSpace::initial) state, a lazy
//!   [`for_each_successor`](StateSpace::for_each_successor) function and a
//!   [`Verdict`]-producing [`inspect`](StateSpace::inspect) hook;
//! * [`explore`] — the sequential explorer (LIFO frontier + marking-style
//!   interner, the exact discipline of the word-parallel reachability
//!   engine);
//! * [`crate::shard::explore_sharded`] — the hash-partitioned parallel
//!   explorer (one interner shard + worker thread per partition, batched
//!   cross-shard queues, in-flight-counter termination);
//! * [`ExploreOptions`] / [`Exploration`] — one knob set (cap, shard
//!   count, violation budget, edge recording, witness reconstruction) and
//!   one result shape for every client.
//!
//! ```text
//!    spaces                     explorers                clients
//!   ┌───────────────┐     ┌──────────────────────┐    ┌──────────────────┐
//!   │ MarkingSpace  │────▶│ explore (sequential) │───▶│ ReachabilityGraph│
//!   │ (firing rule) │  ┌─▶│                      │    │ ::build[_sharded]│
//!   ├───────────────┤  │  ├──────────────────────┤    ├──────────────────┤
//!   │ SI-verify     │──┤  │ shard::              │───▶│ verify_circuit_on│
//!   │ (rg walk)     │  │  │   explore_sharded    │    ├──────────────────┤
//!   ├───────────────┤  │  │ (hash-partitioned,   │    │ conform::        │
//!   │ spec×circuit  │──┤  │  N workers)          │    │   check_*        │
//!   │ product       │  │  └──────────────────────┘    ├──────────────────┤
//!   ├───────────────┤  │                              │ si_proto::       │
//!   │ CFSM channel  │──┘                              │   check_deadlock │
//!   │ protocols     │                                 └──────────────────┘
//!   └───────────────┘
//! ```
//!
//! The abstraction is not Petri-net shaped: `si_proto::ProtoSpace` packs
//! communicating finite-state machines (module control states + channel
//! slots) into the same word format and gets sequential + sharded
//! deadlock checking from these explorers unchanged.
//!
//! Both explorers intern states in one flat word arena, support a state
//! cap, stop early once the violation budget is spent, and can reconstruct
//! a firing-sequence **witness** (the label path from the initial state to
//! any discovered state) — which is how verification and conformance
//! reports grow counterexample traces for free.

use crate::budget::{Budget, Interrupt, InterruptReason};
use crate::net::{FiringView, PetriNet, TransId};
use crate::reach::{MarkingInterner, ReachError, StateId};
use std::time::{Duration, Instant};

/// How often (in explored states) the sequential explorer consults the
/// soft budget limits (deadline / cancellation / bytes). The sharded
/// explorer piggybacks on its own per-64-states checkpoint.
const GOVERN_STRIDE: usize = 256;

/// Outcome of inspecting one state.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Nothing wrong at this state; keep exploring.
    Continue,
    /// The state violates the property under check (details are reported
    /// through the visitor's [`SpaceVisitor::violation`] channel).
    Violation,
}

/// Receiver of one state's expansion: the explorer hands an implementation
/// of this to [`StateSpace::for_each_successor`] and
/// [`StateSpace::inspect`].
pub trait SpaceVisitor<V> {
    /// A successor reached by firing `label`. Returns `false` when the
    /// space must stop enumerating (cap reached or exploration aborted) —
    /// implementations of [`StateSpace::for_each_successor`] must return
    /// `Ok(())` immediately in that case.
    fn successor(&mut self, label: u32, next: &[u64]) -> bool;

    /// A non-fatal violation observed at the current state (or on one of
    /// its outgoing edges).
    fn violation(&mut self, v: V);
}

/// A lazily-defined state space over packed `u64`-word states.
///
/// Implementations define *what* the states and successors are; the
/// explorers of this module define *how* the space is walked. A space must
/// be [`Sync`]: the sharded explorer shares it by reference across worker
/// threads.
///
/// States are fixed-width word vectors ([`Self::words`] words each): the
/// explorers intern them in a flat arena exactly like reachability
/// markings, so a space never sees its own visited set — it only maps a
/// state to its successors (and violations).
pub trait StateSpace: Sync {
    /// The violation payload this space can report — speed-independence
    /// violations, conformance failures, or [`ReachError`] for the plain
    /// marking space.
    type Violation: Send;

    /// Words per packed state.
    fn words(&self) -> usize;

    /// The initial packed state.
    fn initial(&self) -> Vec<u64>;

    /// Per-state verdict hook, called once when a state is explored,
    /// before its successors are enumerated. Report the details of each
    /// violation through `sink`, and return [`Verdict::Violation`] iff
    /// any was reported: the explorers then re-check the violation budget
    /// immediately, so a spent budget (e.g.
    /// [`ExploreOptions::max_violations`]`(1)`) skips even this state's
    /// successor expansion.
    ///
    /// The default implementation reports nothing.
    fn inspect<Vis: SpaceVisitor<Self::Violation>>(
        &self,
        state: &[u64],
        sink: &mut Vis,
    ) -> Verdict {
        let _ = (state, sink);
        Verdict::Continue
    }

    /// Enumerates the successors of `state` in canonical (ascending label)
    /// order, calling `visit.successor(label, next)` for each. `scratch`
    /// is a caller-provided buffer of [`Self::words`] words for building
    /// successor states without per-call allocation. Non-fatal per-edge
    /// violations go through `visit.violation`.
    ///
    /// # Errors
    ///
    /// A **fatal** violation (one that invalidates the whole exploration,
    /// like a safeness violation of the underlying net) aborts the
    /// traversal and is returned as the explorer's error.
    fn for_each_successor<Vis: SpaceVisitor<Self::Violation>>(
        &self,
        state: &[u64],
        scratch: &mut [u64],
        visit: &mut Vis,
    ) -> Result<(), Self::Violation>;
}

/// Tuning knobs of a generic exploration — one surface for every client.
#[derive(Clone, Debug)]
pub struct ExploreOptions {
    /// Resource budget: state cap, approximate byte ceiling, wall-clock
    /// deadline, cooperative cancellation. Exhausting any dimension
    /// *interrupts* the exploration — the partial result is returned,
    /// tagged with [`Exploration::interrupted`].
    pub budget: Budget,
    /// Number of exploration shards (= worker threads when > 1); see
    /// [`crate::ReachOptions::shards`] for normalization.
    pub shards: usize,
    /// Stop exploring new states once this many violations were collected
    /// (`usize::MAX` = exhaustive). `1` is the early-exit-on-first-
    /// violation mode.
    pub max_violations: usize,
    /// Record the full labelled successor adjacency — needed by
    /// reachability-graph construction, wasted on verdict-only clients.
    pub record_edges: bool,
    /// Record each state's discovering edge so
    /// [`Exploration::witness`] can reconstruct a firing sequence from
    /// the initial state.
    pub witness: bool,
}

impl ExploreOptions {
    /// Exhaustive exploration with the given state cap, sequential, no
    /// edge recording, no witnesses.
    pub fn with_cap(cap: usize) -> Self {
        ExploreOptions {
            budget: Budget::with_cap(cap),
            shards: 1,
            max_violations: usize::MAX,
            record_edges: false,
            witness: false,
        }
    }

    /// Replaces the whole resource budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the shard count (normalized like
    /// [`crate::ReachOptions::shards`]).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1).next_power_of_two().min(64);
        self
    }

    /// Sets the violation budget (`1` = stop at the first violation).
    pub fn max_violations(mut self, max: usize) -> Self {
        self.max_violations = max;
        self
    }

    /// Enables successor-adjacency recording.
    pub fn record_edges(mut self) -> Self {
        self.record_edges = true;
        self
    }

    /// Enables witness (firing-sequence) reconstruction.
    pub fn witness(mut self) -> Self {
        self.witness = true;
        self
    }
}

impl From<crate::ReachOptions> for ExploreOptions {
    fn from(r: crate::ReachOptions) -> Self {
        let shards = r.shards;
        ExploreOptions {
            budget: r.budget,
            shards: 1,
            max_violations: usize::MAX,
            record_edges: false,
            witness: false,
        }
        .shards(shards)
    }
}

impl From<&crate::ReachOptions> for ExploreOptions {
    fn from(r: &crate::ReachOptions) -> Self {
        ExploreOptions::from(r.clone())
    }
}

/// Packed-state storage of an [`Exploration`]: the sequential explorer
/// keeps its interner (hash table + arena), the sharded explorer a flat
/// merged arena.
#[derive(Debug)]
pub(crate) enum Store {
    /// The sequential explorer's interner, table intact.
    Map(MarkingInterner),
    /// Flat arena of `len` states, `nw` words each (sharded merge).
    Flat {
        /// Words per state.
        nw: usize,
        /// State `s` is `words[s*nw .. (s+1)*nw]`.
        words: Vec<u64>,
        /// Number of states.
        len: usize,
    },
}

impl Store {
    fn len(&self) -> usize {
        match self {
            Store::Map(i) => i.len(),
            Store::Flat { len, .. } => *len,
        }
    }

    fn key(&self, s: usize) -> &[u64] {
        match self {
            Store::Map(i) => i.key(s),
            Store::Flat { nw, words, .. } => &words[s * nw..(s + 1) * nw],
        }
    }
}

/// Sentinel parent of the initial state.
pub(crate) const NO_PARENT: u32 = u32::MAX;

/// Result of a generic exploration — everything any client needs:
/// the interned states, the optional adjacency, the violations (tagged
/// with the state they were observed at) and the parent links for
/// witness reconstruction.
///
/// State ids are dense `u32`s; id `0` is **not** guaranteed to be the
/// initial state under the sharded explorer — use [`Self::root`].
#[derive(Debug)]
pub struct Exploration<V> {
    pub(crate) store: Store,
    /// Id of the initial state.
    pub(crate) root: u32,
    /// Successor edges `(label, dst)` when
    /// [`ExploreOptions::record_edges`]; state `s` owns
    /// `succ_edges[succ_ranges[s].0 .. succ_ranges[s].1]`.
    pub(crate) succ_edges: Vec<(u32, u32)>,
    /// Per-state `(start, end)` ranges into [`Self::succ_edges`].
    pub(crate) succ_ranges: Vec<(u32, u32)>,
    /// Per-state discovering edge `(parent, label)` when
    /// [`ExploreOptions::witness`]; the root's parent is [`NO_PARENT`].
    pub(crate) parents: Vec<(u32, u32)>,
    /// Violations in discovery order, tagged with the id of the state
    /// they were observed at. Exhaustive explorations report a
    /// deterministic *set* at any shard count; the order is deterministic
    /// only sequentially.
    pub violations: Vec<(u32, V)>,
    /// `Some(reason)` when the exploration stopped because a
    /// [`Budget`] dimension ran out (cap, deadline, cancellation,
    /// bytes) — the result is *partial* but valid: every recorded state,
    /// edge, witness and violation is real.
    pub interrupted: Option<InterruptReason>,
    /// Number of states explored (capped at the budget's state cap).
    pub states: usize,
    /// Wall time the exploration ran (set whether or not it completed,
    /// so partial verdicts can report elapsed time alongside
    /// [`Self::states`]).
    pub elapsed: Duration,
}

impl<V> Exploration<V> {
    /// The packed words of state `s`.
    pub fn key(&self, s: u32) -> &[u64] {
        self.store.key(s as usize)
    }

    /// The interruption, if any, paired with the number of states the
    /// partial result covers — ready for a "no violation in the N states
    /// explored" verdict.
    pub fn interrupt(&self) -> Option<Interrupt> {
        self.interrupted.map(|reason| Interrupt {
            reason,
            states_explored: self.states,
            elapsed: self.elapsed,
        })
    }

    /// Whether the exploration was truncated by the state cap
    /// (compatibility shorthand for matching on [`Self::interrupted`]).
    pub fn cap_exceeded(&self) -> bool {
        self.interrupted == Some(InterruptReason::CapExceeded)
    }

    /// Id of the initial state.
    pub fn root(&self) -> u32 {
        self.root
    }

    /// Number of states interned (on a capped run this can exceed
    /// [`Self::states`] by the one state that burst the cap).
    pub fn interned(&self) -> usize {
        self.store.len()
    }

    /// Decomposes a sequential exploration into its interner and recorded
    /// adjacency — the packing path of
    /// [`crate::ReachabilityGraph::build`].
    #[allow(clippy::type_complexity)]
    pub(crate) fn into_interned_parts(self) -> (MarkingInterner, Vec<(u32, u32)>, Vec<(u32, u32)>) {
        match self.store {
            Store::Map(i) => (i, self.succ_edges, self.succ_ranges),
            Store::Flat { .. } => unreachable!("sequential explorations keep their interner"),
        }
    }

    /// The firing sequence (label path) from the initial state to `s`,
    /// reconstructed from the recorded discovering edges.
    ///
    /// # Panics
    ///
    /// Panics if the exploration ran without [`ExploreOptions::witness`].
    pub fn witness(&self, s: u32) -> Vec<u32> {
        assert!(
            !self.parents.is_empty() || self.store.len() == 0,
            "exploration ran without witness recording"
        );
        let mut labels = Vec::new();
        let mut cur = s;
        while cur != self.root {
            let (p, l) = self.parents[cur as usize];
            debug_assert_ne!(p, NO_PARENT, "unreachable state in witness chain");
            labels.push(l);
            cur = p;
        }
        labels.reverse();
        labels
    }
}

/// How a generic exploration can fail *fatally* (as opposed to being
/// interrupted by its budget, which yields a partial [`Exploration`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExploreError<V> {
    /// A fatal violation returned by [`StateSpace::for_each_successor`]
    /// (one that invalidates the whole exploration, like a safeness
    /// violation of the underlying net).
    Fatal(V),
    /// A worker thread of the sharded explorer panicked. The panic was
    /// caught at the worker boundary — the remaining workers wound down
    /// and the process is intact; only this exploration is lost.
    WorkerPanicked {
        /// Index of the shard whose worker panicked.
        shard: usize,
        /// The panic message.
        message: String,
    },
}

impl<V: std::fmt::Display> std::fmt::Display for ExploreError<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::Fatal(v) => v.fmt(f),
            ExploreError::WorkerPanicked { shard, message } => {
                write!(f, "exploration worker {shard} panicked: {message}")
            }
        }
    }
}

/// Explores `space` with the engine selected by `opts`: sequential for
/// `shards <= 1`, the sharded multi-threaded explorer of [`crate::shard`]
/// otherwise.
///
/// # Errors
///
/// [`ExploreError::Fatal`] with the first fatal violation returned by
/// [`StateSpace::for_each_successor`], or
/// [`ExploreError::WorkerPanicked`] when a sharded worker panicked.
pub fn explore_with<S: StateSpace>(
    space: &S,
    opts: ExploreOptions,
) -> Result<Exploration<S::Violation>, ExploreError<S::Violation>> {
    if opts.shards <= 1 {
        explore(space, opts)
    } else {
        crate::shard::explore_sharded(space, opts)
    }
}

/// The generic **sequential** explorer: LIFO frontier over an interned
/// flat-arena visited set — the exact discipline (and state numbering) of
/// the word-parallel reachability engine, for any [`StateSpace`].
///
/// # Errors
///
/// [`ExploreError::Fatal`] with the first fatal violation returned by
/// [`StateSpace::for_each_successor`]. Budget exhaustion (cap, deadline,
/// cancellation, bytes) is **not** an error: the partial exploration is
/// returned, tagged [`Exploration::interrupted`].
pub fn explore<S: StateSpace>(
    space: &S,
    opts: ExploreOptions,
) -> Result<Exploration<S::Violation>, ExploreError<S::Violation>> {
    let _span = si_obs::span("explore.sequential");
    let t0 = Instant::now();
    let nw = space.words();
    let mut interner = MarkingInterner::new(nw);
    let init = space.initial();
    debug_assert_eq!(init.len(), nw);
    let (s0, _) = interner.intern(&init);
    debug_assert_eq!(s0, StateId(0));

    let mut sink = SequentialSink {
        interner,
        frontier: vec![0u32],
        succ_edges: Vec::new(),
        succ_ranges: if opts.record_edges {
            vec![(0, 0)]
        } else {
            Vec::new()
        },
        parents: if opts.witness {
            vec![(NO_PARENT, 0)]
        } else {
            Vec::new()
        },
        violations: Vec::new(),
        states: 1,
        interrupted: None,
        src: 0,
        record_edges: opts.record_edges,
        witness: opts.witness,
        cap: opts.budget.cap,
    };
    let mut cur = vec![0u64; nw];
    let mut scratch = vec![0u64; nw];
    // Soft limits (deadline/cancel/bytes) are consulted once per
    // GOVERN_STRIDE explored states, never per state — an unbounded
    // budget costs one branch per stride. Progress heartbeats piggyback
    // on the same checkpoint, so arming them adds no per-state branch.
    let governed = opts.budget.has_soft_limits();
    let ticking = si_obs::progress_armed();
    let checkpointed = governed || ticking;
    let mut explored = 0usize;

    while let Some(s) = sink.frontier.pop() {
        if sink.violations.len() >= opts.max_violations || sink.interrupted.is_some() {
            break;
        }
        if checkpointed && explored.is_multiple_of(GOVERN_STRIDE) {
            if governed {
                if let Some(reason) = opts.budget.check_soft(sink.approx_bytes()) {
                    sink.interrupted = Some(reason);
                    break;
                }
            }
            if ticking {
                si_obs::progress_tick(explored, sink.frontier.len() + 1);
            }
        }
        explored += 1;
        cur.copy_from_slice(sink.interner.key(s as usize));
        sink.src = s;
        // A violating verdict counts against the budget immediately: a
        // spent budget skips even this state's successor expansion.
        if space.inspect(&cur, &mut sink) == Verdict::Violation
            && sink.violations.len() >= opts.max_violations
        {
            break;
        }
        let start = sink.succ_edges.len() as u32;
        space
            .for_each_successor(&cur, &mut scratch, &mut sink)
            .map_err(ExploreError::Fatal)?;
        if opts.record_edges {
            sink.succ_ranges[s as usize] = (start, sink.succ_edges.len() as u32);
        }
    }

    let states = sink.states.min(opts.budget.cap);
    if si_obs::enabled() {
        si_obs::counter_add("explore.states", states as u64);
        si_obs::counter_add("explore.edges", sink.succ_edges.len() as u64);
    }
    Ok(Exploration {
        store: Store::Map(sink.interner),
        root: 0,
        succ_edges: sink.succ_edges,
        succ_ranges: sink.succ_ranges,
        parents: sink.parents,
        violations: sink.violations,
        interrupted: sink.interrupted,
        states,
        elapsed: t0.elapsed(),
    })
}

/// The sequential explorer's visitor: interns successors, records
/// edges/parents, collects violations, enforces the cap.
struct SequentialSink<V> {
    interner: MarkingInterner,
    frontier: Vec<u32>,
    succ_edges: Vec<(u32, u32)>,
    succ_ranges: Vec<(u32, u32)>,
    parents: Vec<(u32, u32)>,
    violations: Vec<(u32, V)>,
    /// States accepted (the over-cap key is interned but not accepted).
    states: usize,
    interrupted: Option<InterruptReason>,
    /// State currently being expanded.
    src: u32,
    record_edges: bool,
    witness: bool,
    cap: usize,
}

impl<V> SequentialSink<V> {
    /// Approximate live bytes: state arena + interner table + recorded
    /// adjacency (the dominant allocations of an exploration).
    fn approx_bytes(&self) -> usize {
        self.interner.approx_bytes()
            + self.succ_edges.len() * 8
            + (self.succ_ranges.len() + self.parents.len() + self.frontier.len()) * 8
    }
}

impl<V> SpaceVisitor<V> for SequentialSink<V> {
    fn successor(&mut self, label: u32, next: &[u64]) -> bool {
        if self.interrupted.is_some() {
            return false;
        }
        let (id, is_new) = self.interner.intern(next);
        if is_new {
            if self.states >= self.cap {
                self.interrupted = Some(InterruptReason::CapExceeded);
                return false;
            }
            self.states += 1;
            if self.record_edges {
                self.succ_ranges.push((0, 0));
            }
            if self.witness {
                self.parents.push((self.src, label));
            }
            self.frontier.push(id.0);
        }
        if self.record_edges {
            self.succ_edges.push((label, id.0));
        }
        true
    }

    fn violation(&mut self, v: V) {
        self.violations.push((self.src, v));
    }
}

/// The trivial state space of a Petri net's reachable markings: states are
/// markings, labels are transition indices, successors follow the firing
/// rule `(m \ •t) ∪ t•` via a [`FiringView`]. A safeness violation is
/// fatal ([`ReachError::NotSafe`]).
///
/// This is the space behind [`crate::ReachabilityGraph::build`] /
/// [`crate::ReachabilityGraph::build_sharded`]; it reports no
/// [`inspect`](StateSpace::inspect) violations.
#[derive(Debug)]
pub struct MarkingSpace {
    view: FiringView,
    initial: Vec<u64>,
}

impl MarkingSpace {
    /// The marking space of `net`.
    pub fn new(net: &PetriNet) -> Self {
        MarkingSpace {
            view: net.firing_view(),
            initial: net.initial_marking().as_words().to_vec(),
        }
    }
}

impl StateSpace for MarkingSpace {
    type Violation = ReachError;

    fn words(&self) -> usize {
        self.view.words()
    }

    fn initial(&self) -> Vec<u64> {
        self.initial.clone()
    }

    fn for_each_successor<Vis: SpaceVisitor<ReachError>>(
        &self,
        m: &[u64],
        scratch: &mut [u64],
        visit: &mut Vis,
    ) -> Result<(), ReachError> {
        for ti in 0..self.view.transition_count() {
            if !self.view.is_enabled(m, ti) {
                continue;
            }
            if self.view.violates_safeness(m, ti) {
                return Err(ReachError::NotSafe {
                    transition: TransId(ti as u32),
                });
            }
            self.view.fire_into(m, ti, scratch);
            if !visit.successor(ti as u32, scratch) {
                return Ok(());
            }
        }
        Ok(())
    }
}

/// Single-word fast path of [`MarkingSpace`] for nets of at most 64
/// places: one interleaved `[pre, gain, post]` record per transition, so
/// enable / safeness / firing are a handful of scalar ALU ops.
#[derive(Debug)]
pub(crate) struct ScalarMarkingSpace {
    masks: Vec<[u64; 3]>,
    initial: u64,
}

impl ScalarMarkingSpace {
    pub(crate) fn new(net: &PetriNet) -> Self {
        debug_assert_eq!(net.initial_marking().as_words().len(), 1);
        ScalarMarkingSpace {
            masks: net
                .transitions()
                .map(|t| {
                    [
                        net.pre_mask(t).as_words()[0],
                        net.gain_mask(t).as_words()[0],
                        net.post_mask(t).as_words()[0],
                    ]
                })
                .collect(),
            initial: net.initial_marking().as_words()[0],
        }
    }
}

impl StateSpace for ScalarMarkingSpace {
    type Violation = ReachError;

    fn words(&self) -> usize {
        1
    }

    fn initial(&self) -> Vec<u64> {
        vec![self.initial]
    }

    fn for_each_successor<Vis: SpaceVisitor<ReachError>>(
        &self,
        m: &[u64],
        scratch: &mut [u64],
        visit: &mut Vis,
    ) -> Result<(), ReachError> {
        let cur = m[0];
        for (ti, &[pre, gain, post]) in self.masks.iter().enumerate() {
            if pre & !cur != 0 {
                continue; // •t ⊄ m
            }
            if gain & cur != 0 {
                return Err(ReachError::NotSafe {
                    transition: TransId(ti as u32),
                });
            }
            scratch[0] = (cur & !pre) | post;
            if !visit.successor(ti as u32, scratch) {
                return Ok(());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// p0 -> t0 -> p1 -> t1 -> p0 with a side choice p1 -> t2 -> p0.
    fn ring_with_choice() -> PetriNet {
        let mut b = PetriNet::builder();
        let p0 = b.add_place("p0", true);
        let p1 = b.add_place("p1", false);
        let t0 = b.add_transition("t0");
        let t1 = b.add_transition("t1");
        let t2 = b.add_transition("t2");
        b.arc_pt(p0, t0);
        b.arc_tp(t0, p1);
        b.arc_pt(p1, t1);
        b.arc_tp(t1, p0);
        b.arc_pt(p1, t2);
        b.arc_tp(t2, p0);
        b.build()
    }

    #[test]
    fn sequential_marking_exploration() {
        let net = ring_with_choice();
        let space = MarkingSpace::new(&net);
        let e = explore(
            &space,
            ExploreOptions::with_cap(100).record_edges().witness(),
        )
        .unwrap();
        assert_eq!(e.states, 2);
        assert!(!e.cap_exceeded());
        assert_eq!(e.interrupt(), None);
        assert_eq!(e.root(), 0);
        // State 1 (p1) discovered from state 0 by t0.
        assert_eq!(e.witness(1), vec![0]);
        assert_eq!(e.witness(0), Vec::<u32>::new());
        // Edges: s0 -t0-> s1; s1 -t1-> s0, s1 -t2-> s0.
        assert_eq!(e.succ_edges, vec![(0, 1), (1, 0), (2, 0)]);
    }

    #[test]
    fn cap_truncates() {
        let net = ring_with_choice();
        let space = MarkingSpace::new(&net);
        let e = explore(&space, ExploreOptions::with_cap(1)).unwrap();
        assert!(e.cap_exceeded());
        assert_eq!(e.states, 1);
        let i = e.interrupt().unwrap();
        assert_eq!(i.reason, InterruptReason::CapExceeded);
        assert_eq!(i.states_explored, 1);
        assert_eq!(i.elapsed, e.elapsed);
    }

    /// A space that flags every state whose low bit is set.
    struct OddFlagger;

    impl StateSpace for OddFlagger {
        type Violation = u64;

        fn words(&self) -> usize {
            1
        }

        fn initial(&self) -> Vec<u64> {
            vec![0]
        }

        fn inspect<Vis: SpaceVisitor<u64>>(&self, state: &[u64], sink: &mut Vis) -> Verdict {
            if state[0] % 2 == 1 {
                sink.violation(state[0]);
                Verdict::Violation
            } else {
                Verdict::Continue
            }
        }

        fn for_each_successor<Vis: SpaceVisitor<u64>>(
            &self,
            state: &[u64],
            scratch: &mut [u64],
            visit: &mut Vis,
        ) -> Result<(), u64> {
            if state[0] < 10 {
                scratch[0] = state[0] + 1;
                if !visit.successor(0, scratch) {
                    return Ok(());
                }
            }
            Ok(())
        }
    }

    #[test]
    fn violation_budget_stops_exploration() {
        let all = explore(&OddFlagger, ExploreOptions::with_cap(1000)).unwrap();
        assert_eq!(all.violations.len(), 5); // 1, 3, 5, 7, 9
        let first = explore(
            &OddFlagger,
            ExploreOptions::with_cap(1000).max_violations(1),
        )
        .unwrap();
        assert_eq!(first.violations.len(), 1);
        assert_eq!(first.violations[0].1, 1);
        assert!(first.states < all.states);
    }

    #[test]
    fn sharded_dispatch_matches_sequential_verdicts() {
        let seq = explore_with(&OddFlagger, ExploreOptions::with_cap(1000)).unwrap();
        let par = explore_with(&OddFlagger, ExploreOptions::with_cap(1000).shards(4)).unwrap();
        assert_eq!(seq.states, par.states);
        let mut a: Vec<u64> = seq.violations.iter().map(|&(_, v)| v).collect();
        let mut b: Vec<u64> = par.violations.iter().map(|&(_, v)| v).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
