//! Serializable exploration summaries.
//!
//! A [`ReachSummary`] is the part of a completed exploration that is worth
//! keeping across sessions: the headline counts a `check` answers with.
//! The serving layer (`si-serve`) stores summaries in its content-addressed
//! artifact store keyed by the spec's canonical form, so a repeat request
//! can report state counts with **zero** reachability-graph builds
//! (observable via [`ReachabilityGraph::build_count`]).
//!
//! Summaries are only ever recorded for *conclusive* explorations — an
//! interrupted build has no stable counts to cache.
//!
//! [`ReachabilityGraph::build_count`]: crate::ReachabilityGraph::build_count

use crate::reach::ReachabilityGraph;
use std::fmt;

/// Headline counts of a completed (conclusive) exploration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReachSummary {
    /// Number of reachable states.
    pub states: u64,
    /// Number of graph edges (firings between distinct markings).
    pub edges: u64,
    /// Whether every reachable marking was safe (always true for graphs
    /// built by this workspace — unsafe nets fail the build).
    pub safe: bool,
}

/// Error from [`ReachSummary::from_wire`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseSummaryError(String);

impl fmt::Display for ParseSummaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed reach summary: {}", self.0)
    }
}

impl std::error::Error for ParseSummaryError {}

impl ReachSummary {
    /// Summarizes a fully built graph.
    pub fn of(rg: &ReachabilityGraph) -> Self {
        ReachSummary {
            states: rg.state_count() as u64,
            edges: rg.edge_count() as u64,
            safe: true,
        }
    }

    /// Serializes to the stable one-line wire form
    /// (`reach-v1 states=N edges=M safe=B`).
    pub fn to_wire(&self) -> String {
        format!(
            "reach-v1 states={} edges={} safe={}",
            self.states, self.edges, self.safe
        )
    }

    /// Parses the [`Self::to_wire`] form.
    ///
    /// # Errors
    ///
    /// Returns [`ParseSummaryError`] on a version mismatch or malformed
    /// fields — callers treat that as a cache miss, never a hard failure.
    pub fn from_wire(text: &str) -> Result<Self, ParseSummaryError> {
        let mut it = text.split_whitespace();
        if it.next() != Some("reach-v1") {
            return Err(ParseSummaryError("missing reach-v1 header".into()));
        }
        let mut states = None;
        let mut edges = None;
        let mut safe = None;
        for field in it {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| ParseSummaryError(format!("field {field:?}")))?;
            match key {
                "states" => {
                    states = Some(
                        value
                            .parse()
                            .map_err(|_| ParseSummaryError(format!("states={value}")))?,
                    )
                }
                "edges" => {
                    edges = Some(
                        value
                            .parse()
                            .map_err(|_| ParseSummaryError(format!("edges={value}")))?,
                    )
                }
                "safe" => {
                    safe = Some(
                        value
                            .parse()
                            .map_err(|_| ParseSummaryError(format!("safe={value}")))?,
                    )
                }
                _ => {} // forward compatibility: unknown fields are ignored
            }
        }
        Ok(ReachSummary {
            states: states.ok_or_else(|| ParseSummaryError("missing states".into()))?,
            edges: edges.ok_or_else(|| ParseSummaryError("missing edges".into()))?,
            safe: safe.unwrap_or(true),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip() {
        let s = ReachSummary {
            states: 1234,
            edges: 5678,
            safe: true,
        };
        assert_eq!(ReachSummary::from_wire(&s.to_wire()).unwrap(), s);
        // Unknown fields are ignored, missing required ones are errors.
        assert!(ReachSummary::from_wire("reach-v1 states=1 edges=2 future=x").is_ok());
        assert!(ReachSummary::from_wire("reach-v1 states=1").is_err());
        assert!(ReachSummary::from_wire("reach-v2 states=1 edges=2").is_err());
    }
}
