//! The deterministic fault-injection suite: drives the real worker pools
//! of the workspace — the sharded state-space explorer, parallel
//! per-signal synthesis, CSC candidate scoring, the serve job queue and
//! artifact store — with faults armed at
//! their named failpoints, and asserts the robustness contract: every
//! injected panic surfaces as a structured `WorkerPanicked` (process
//! intact), stalls never deadlock the termination counter, and a
//! simulated cap burst degrades into the ordinary cap verdict.
//!
//! Requires the `failpoints` feature (CI runs
//! `cargo test -p si-fault --features failpoints`); without it the
//! downstream sites compile to nothing and this file is empty.
#![cfg(feature = "failpoints")]

use si_fault::{arm, armed_count, relock, reset, FaultAction};
use si_petri::{InterruptReason, ReachError, ReachOptions, ReachabilityGraph, SymbolicReach};
use si_serve::json::{self, Value};
use si_serve::{ArtifactStore, JobQueue, Service};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// The failpoint registry is process-global, so the injection tests must
/// not interleave: each takes this lock for its whole body. `relock`
/// because a failing test poisons it for every later one.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    relock(&LOCK)
}

#[test]
fn shard_worker_panic_becomes_structured_error() {
    let _guard = serial();
    let stg = si_stg::generators::clatch(6);
    let net = stg.net();
    // Every shard of the explorer must convert a dying worker into the
    // structured error naming it, with the process intact.
    for shard in 0..4u64 {
        reset();
        arm("shard::worker", Some(shard), FaultAction::Panic);
        let err = ReachabilityGraph::build_with(net, ReachOptions::with_cap(1_000_000).shards(4))
            .unwrap_err();
        match err {
            ReachError::WorkerPanicked { shard: s, message } => {
                assert_eq!(s, shard as usize);
                assert!(message.contains("injected fault"), "got: {message}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        assert_eq!(armed_count(), 0, "the armed fault must have fired");
    }
    // The pool is reusable after the panic: a clean rebuild succeeds and
    // matches the sequential engine.
    let seq = ReachabilityGraph::build(net, 1_000_000).unwrap();
    let par =
        ReachabilityGraph::build_with(net, ReachOptions::with_cap(1_000_000).shards(4)).unwrap();
    assert_eq!(seq.state_count(), par.state_count());
    assert_eq!(seq.edge_count(), par.edge_count());
    reset();
}

#[test]
fn first_worker_panic_wins_and_only_one_is_reported() {
    let _guard = serial();
    reset();
    let stg = si_stg::generators::clatch(6);
    let net = stg.net();
    arm("shard::worker", Some(1), FaultAction::Panic);
    arm("shard::worker", Some(2), FaultAction::Panic);
    let err = ReachabilityGraph::build_with(net, ReachOptions::with_cap(1_000_000).shards(4))
        .unwrap_err();
    match err {
        ReachError::WorkerPanicked { shard, .. } => {
            assert!(
                shard == 1 || shard == 2,
                "reported shard {shard} was never armed"
            );
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    reset();
}

#[test]
fn flush_stall_does_not_deadlock_and_the_sealed_graph_is_identical() {
    let _guard = serial();
    reset();
    let stg = si_stg::generators::clatch(6);
    let net = stg.net();
    // Delay one cross-shard publish: the in-flight counter must keep the
    // receiver spinning until the batch lands, and the canonical seal must
    // still reproduce the sequential graph bit for bit.
    arm(
        "shard::flush",
        None,
        FaultAction::Stall(Duration::from_millis(50)),
    );
    let par =
        ReachabilityGraph::build_with(net, ReachOptions::with_cap(1_000_000).shards(4)).unwrap();
    let seq = ReachabilityGraph::build(net, 1_000_000).unwrap();
    assert_eq!(seq.state_count(), par.state_count());
    assert_eq!(seq.edge_count(), par.edge_count());
    assert_eq!(armed_count(), 0, "the stall must have fired");
    reset();
}

#[test]
fn injected_cap_burst_degrades_into_the_ordinary_cap_verdict() {
    let _guard = serial();
    reset();
    let stg = si_stg::generators::clatch(6);
    let net = stg.net();
    // Simulate the global state counter bursting at the 4th interned
    // state (value = count before the add): the run winds down exactly
    // like a genuine cap hit, not a crash.
    arm("shard::accept", Some(3), FaultAction::Trigger);
    let err = ReachabilityGraph::build_with(net, ReachOptions::with_cap(1_000_000).shards(4))
        .unwrap_err();
    assert!(
        matches!(err, ReachError::StateCapExceeded { .. }),
        "expected StateCapExceeded, got {err:?}"
    );
    assert_eq!(armed_count(), 0, "the trigger must have fired");
    // And the burst leaves no residue: the next build is exhaustive.
    let rg =
        ReachabilityGraph::build_with(net, ReachOptions::with_cap(1_000_000).shards(4)).unwrap();
    assert_eq!(
        rg.state_count(),
        ReachabilityGraph::build(net, 1_000_000)
            .unwrap()
            .state_count()
    );
    reset();
}

#[test]
fn protocol_step_panic_surfaces_without_poisoning_the_pool() {
    let _guard = serial();
    reset();
    let sys = si_proto::dining(6);
    // Kill the first successor expansion a shard worker performs: the
    // deadlock checker must hand back the structured worker error, not
    // tear the process down.
    arm("proto::step", None, FaultAction::Panic);
    let mut reach = ReachOptions::with_cap(1_000_000);
    reach.shards = 4;
    let si_proto::ProtoError::WorkerPanicked { shard, message } =
        si_proto::check_deadlock_with(&sys, reach).unwrap_err();
    assert!(shard < 4, "reported shard {shard} out of range");
    assert!(message.contains("injected fault"), "got: {message}");
    assert_eq!(armed_count(), 0, "the armed fault must have fired");
    // The pool is reusable after the casualty: the clean sharded rerun
    // reproduces the sequential report — same deadlock, same witness
    // target, same state count.
    let mut reach = ReachOptions::with_cap(1_000_000);
    reach.shards = 4;
    let par = si_proto::check_deadlock_with(&sys, reach).unwrap();
    let seq = si_proto::check_deadlock(&sys).unwrap();
    assert_eq!(par.violations, seq.violations);
    assert_eq!(par.states_explored, seq.states_explored);
    assert!(!par.is_ok(), "dining(6) deadlocks");
    reset();
}

#[test]
fn synthesis_worker_panic_names_the_signal_and_the_pool_survives() {
    let _guard = serial();
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    if workers < 2 {
        return; // the parallel pool (and its failpoint) never engages
    }
    reset();
    let stg = si_stg::generators::muller_pipeline(4);
    assert!(
        stg.synthesized_signals().len() >= 2,
        "need a multi-signal batch to engage the pool"
    );
    // Kill the worker synthesizing the first signal of the batch.
    arm("synthesis::signal", Some(0), FaultAction::Panic);
    let err = si_core::synthesize(&stg, &si_core::SynthesisOptions::default()).unwrap_err();
    match err {
        si_core::SynthesisError::WorkerPanicked { signal, detail } => {
            assert_eq!(signal, stg.synthesized_signals()[0]);
            assert!(detail.contains("injected fault"), "got: {detail}");
        }
        other => panic!("expected WorkerPanicked, got {other}"),
    }
    assert_eq!(armed_count(), 0, "the armed fault must have fired");
    // First-error-wins slot and poison-tolerant collection leave the pool
    // reusable: the same synthesis succeeds on the next call.
    let syn = si_core::synthesize(&stg, &si_core::SynthesisOptions::default()).unwrap();
    assert!(syn.literal_area > 0);
    reset();
}

#[test]
fn symbolic_iteration_burst_degrades_into_the_tagged_partial_verdict() {
    let _guard = serial();
    reset();
    let stg = si_stg::generators::clatch(6);
    let net = stg.net();
    // Simulate the budget bursting at the 3rd fixpoint iteration (value =
    // iterations completed when the check runs): the build must wind down
    // into the same tagged partial verdict a genuine deadline/cancel
    // produces — `Ok` with an underapproximated reached set, not an error.
    arm("symbolic::iterate", Some(2), FaultAction::Trigger);
    let total = ReachabilityGraph::build(net, 1_000_000)
        .unwrap()
        .state_count() as u128;
    let partial = SymbolicReach::build(net).expect("a burst is not an error");
    let i = partial.interrupt().expect("tagged partial verdict");
    assert_eq!(i.reason, InterruptReason::Cancelled);
    assert!(!partial.is_complete());
    assert_eq!(partial.iterations(), 2);
    assert!(partial.state_count() >= 1);
    assert!(
        partial.state_count() < total,
        "bursting at iteration 2 must leave an underapproximation"
    );
    assert_eq!(i.states_explored as u128, partial.state_count());
    assert!(partial.contains(&net.initial_marking()));
    assert_eq!(armed_count(), 0, "the trigger must have fired");
    // The burst leaves no residue: a clean rebuild reaches the fixpoint
    // and agrees with the explicit oracle.
    let clean = SymbolicReach::build(net).unwrap();
    assert!(clean.is_complete());
    assert_eq!(clean.state_count(), total);
    reset();
}

/// A serve stack (store + service + 2-worker queue) and a synth request
/// line for a small benchmark, as the socket server would wire them.
fn serve_stack() -> (Arc<ArtifactStore>, Arc<Service>, JobQueue, String) {
    let store = Arc::new(ArtifactStore::in_memory(16 << 20));
    let service = Arc::new(Service::new(Arc::clone(&store)));
    let queue = JobQueue::new(2);
    let spec = si_stg::write_g(&si_stg::generators::clatch(2));
    let line = format!("{{\"op\": \"synth\", \"spec\": {}}}", json::escape(&spec));
    (store, service, queue, line)
}

#[test]
fn serve_job_panic_is_a_structured_error_and_the_queue_keeps_serving() {
    let _guard = serial();
    reset();
    let (store, service, queue, line) = serve_stack();
    // Kill the first job the pool picks up (seq 0), exactly where the
    // server's worker runs it.
    arm("serve::job", Some(0), FaultAction::Panic);
    let svc = Arc::clone(&service);
    let req = line.clone();
    let err = queue
        .submit(move || svc.execute(&req).body)
        .expect_err("the injected panic must surface as Err");
    assert!(err.contains("injected fault"), "got: {err}");
    assert_eq!(armed_count(), 0, "the armed fault must have fired");
    // Neither the queue nor the store is poisoned: the same request
    // succeeds on the next submission, through the same workers.
    let svc = Arc::clone(&service);
    let req = line.clone();
    let body = queue.submit(move || svc.execute(&req).body).unwrap();
    let v = json::parse(&body).expect("response body is JSON");
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{body}");
    let s = queue.stats();
    assert_eq!((s.executed, s.panicked, s.depth), (1, 1, 0));
    // The successful retry populated the store past the casualty.
    assert!(store.stats().mem_entries > 0);
    reset();
}

#[test]
fn store_write_panic_mid_job_poisons_neither_queue_nor_store() {
    let _guard = serial();
    reset();
    let (_store, service, queue, line) = serve_stack();
    // Kill the first artifact write (a per-signal cover) *inside* the
    // executing job: the panic unwinds through the service and the
    // store, and must be contained by the worker's isolation.
    arm("store::write", Some(0), FaultAction::Panic);
    let svc = Arc::clone(&service);
    let req = line.clone();
    let err = queue
        .submit(move || svc.execute(&req).body)
        .expect_err("the injected panic must surface as Err");
    assert!(err.contains("injected fault"), "got: {err}");
    assert_eq!(armed_count(), 0, "the armed fault must have fired");
    // The store's locks are intact: the identical request re-derives
    // everything, caches it, and a third run is answered from cache.
    let svc = Arc::clone(&service);
    let req = line.clone();
    let body = queue.submit(move || svc.execute(&req).body).unwrap();
    let v = json::parse(&body).expect("response body is JSON");
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{body}");
    let cached = service.execute(&line);
    assert!(cached.cache_hit, "the interrupted write left no residue");
    assert_eq!(cached.body, body);
    let s = queue.stats();
    assert_eq!((s.executed, s.panicked), (1, 1));
    reset();
}

#[test]
fn csc_scoring_panic_skips_the_candidate_and_the_search_continues() {
    let _guard = serial();
    reset();
    let stg = si_stg::benchmarks::vme_read_raw();
    // Kill the worker scoring the first candidate of the first batch: the
    // search must count the casualty, skip it and resolve on a survivor.
    arm("csc::evaluate", Some(0), FaultAction::Panic);
    let opts = si_csc::CscOptions::default().workers(2);
    let outcome = si_csc::resolve(&stg, &opts);
    assert_eq!(outcome.stats.panicked, 1, "stats: {:?}", outcome.stats);
    assert!(
        outcome.resolution.is_some(),
        "surviving candidates must still resolve the conflict"
    );
    assert_eq!(armed_count(), 0, "the armed fault must have fired");
    // The panicking candidate is charged against neither verdict counter.
    let stats = &outcome.stats;
    assert!(stats.evaluated + stats.panicked <= stats.generated.max(stats.evaluated + 1));
    reset();
}
