//! Deterministic fault injection and panic-tolerance utilities.
//!
//! The worker pools of this workspace (the sharded state-space explorer,
//! parallel per-signal synthesis, CSC candidate scoring) promise to
//! survive a panicking worker: the panic is caught, converted into a
//! structured `WorkerPanicked` error through the pool's first-error-wins
//! slot, and the process stays alive. This crate provides both halves of
//! that promise:
//!
//! * **Panic tolerance** — [`run_isolated`] (a `catch_unwind` wrapper
//!   that extracts the panic message) and [`relock`] (poison-tolerant
//!   mutex acquisition: a panicked worker must not turn every later
//!   `lock().unwrap()` into a second panic).
//! * **Fault injection** — named *failpoints* compiled into the pools
//!   only under the `failpoints` feature (off by default; release builds
//!   carry no injection code). Tests [`arm`] a site with a
//!   [`FaultAction`] and the next matching [`fail_point!`] hit fires it:
//!   panic, stall, or trigger (a boolean the site uses to simulate a
//!   condition such as "the cap bursts at state *k*").
//!
//! Injection is deterministic: sites are keyed by name plus an optional
//! `u64` value (worker index, state count, candidate index), so a test
//! arms exactly the hit it means. Armed faults fire once and disarm.
//!
//! # Examples
//!
//! ```
//! // Always available, feature or not:
//! let r = si_fault::run_isolated(|| 2 + 2);
//! assert_eq!(r, Ok(4));
//! let r = si_fault::run_isolated(|| -> u32 { panic!("boom") });
//! assert_eq!(r, Err("boom".to_string()));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// What an armed failpoint does when hit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic inside the hitting thread (exercises `catch_unwind` +
    /// poison recovery in the surrounding pool).
    Panic,
    /// Sleep for the given duration (exercises termination counters and
    /// queue-stall tolerance).
    Stall(Duration),
    /// Make the site's [`fail_trigger!`] expression return `true` (the
    /// site decides what that simulates — e.g. a cap burst at state `k`).
    Trigger,
}

/// One armed fault: fires on the next [`hit`] whose site name matches and
/// whose value matches (`None` = any value), then disarms.
#[derive(Debug)]
struct ArmedFault {
    site: &'static str,
    value: Option<u64>,
    action: FaultAction,
}

/// Count of armed faults — the fast path: [`hit`] is a single relaxed
/// atomic load when nothing is armed.
static ARMED_COUNT: AtomicUsize = AtomicUsize::new(0);
static REGISTRY: Mutex<Vec<ArmedFault>> = Mutex::new(Vec::new());

/// Disarms every failpoint. Call at the start of each injection test.
pub fn reset() {
    let mut reg = relock(&REGISTRY);
    reg.clear();
    ARMED_COUNT.store(0, Ordering::Release);
}

/// Arms `site` so that the next [`hit`] carrying a matching `value`
/// (`None` matches any) performs `action` and disarms. Multiple arms may
/// be outstanding, including several on the same site with different
/// values.
pub fn arm(site: &'static str, value: Option<u64>, action: FaultAction) {
    let mut reg = relock(&REGISTRY);
    reg.push(ArmedFault {
        site,
        value,
        action,
    });
    ARMED_COUNT.fetch_add(1, Ordering::Release);
}

/// Reports a failpoint hit. Returns `true` iff an armed
/// [`FaultAction::Trigger`] fired. Called through the [`fail_point!`] /
/// [`fail_trigger!`] macros — downstream code should not call it
/// directly, so that sites compile out without the `failpoints` feature.
///
/// # Panics
///
/// Panics (by design) when the matching armed fault is
/// [`FaultAction::Panic`].
pub fn hit(site: &str, value: u64) -> bool {
    if ARMED_COUNT.load(Ordering::Acquire) == 0 {
        return false;
    }
    let action = {
        let mut reg = relock(&REGISTRY);
        let found = reg
            .iter()
            .position(|f| f.site == site && f.value.is_none_or(|v| v == value));
        match found {
            Some(i) => {
                ARMED_COUNT.fetch_sub(1, Ordering::Release);
                reg.remove(i).action
            }
            None => return false,
        }
    };
    match action {
        FaultAction::Panic => panic!("injected fault at failpoint {site} (value {value})"),
        FaultAction::Stall(d) => {
            std::thread::sleep(d);
            false
        }
        FaultAction::Trigger => true,
    }
}

/// Number of currently armed faults (a test can assert its injection was
/// actually consumed).
pub fn armed_count() -> usize {
    ARMED_COUNT.load(Ordering::Acquire)
}

/// Poison-tolerant mutex acquisition: a panic in another thread while it
/// held the lock poisons the mutex, but the data of every pool in this
/// workspace stays valid across a worker panic (first-error-wins slots,
/// append-only batches guarded by length checks), so the poison flag is
/// cleared rather than propagated — one panicking worker must not turn
/// every subsequent lock into a second panic.
pub fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Extracts the human-readable message from a panic payload.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f`, converting a panic into `Err(message)` — the per-worker
/// isolation wrapper of every thread pool in the workspace.
///
/// The closure is treated as unwind-safe: pool workers communicate only
/// through the pool's shared state, which is designed to stay consistent
/// across a mid-flight panic (see [`relock`]).
pub fn run_isolated<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(panic_message)
}

/// Reports a hit at a named failpoint, performing the armed action if
/// any. Without the `failpoints` feature (of the *calling* crate) this
/// expands to nothing.
///
/// `fail_point!("site")` hits with value `0`;
/// `fail_point!("site", v)` hits with value `v` (any `as u64` castable
/// expression — worker index, state count, candidate index).
#[macro_export]
macro_rules! fail_point {
    ($site:expr) => {
        $crate::fail_point!($site, 0u64)
    };
    ($site:expr, $value:expr) => {{
        #[cfg(feature = "failpoints")]
        {
            let _ = $crate::hit($site, $value as u64);
        }
        #[cfg(not(feature = "failpoints"))]
        {
            let _ = &$value;
        }
    }};
}

/// Like [`fail_point!`] but evaluates to `true` iff an armed
/// [`FaultAction::Trigger`] fired — for sites that *simulate a
/// condition* (e.g. "the state cap bursts at state `k`") rather than
/// crash. Without the `failpoints` feature this is a constant `false`.
#[macro_export]
macro_rules! fail_trigger {
    ($site:expr, $value:expr) => {{
        #[cfg(feature = "failpoints")]
        {
            $crate::hit($site, $value as u64)
        }
        #[cfg(not(feature = "failpoints"))]
        {
            let _ = &$value;
            false
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_hits_are_free_and_false() {
        reset();
        assert!(!hit("nowhere", 7));
        assert_eq!(armed_count(), 0);
    }

    #[test]
    fn trigger_fires_once_on_matching_value() {
        reset();
        arm("t::site", Some(3), FaultAction::Trigger);
        assert!(!hit("t::site", 2), "value mismatch must not fire");
        assert!(!hit("other", 3), "site mismatch must not fire");
        assert!(hit("t::site", 3));
        assert!(!hit("t::site", 3), "armed faults are one-shot");
        reset();
    }

    #[test]
    fn panic_action_panics_and_is_isolated() {
        reset();
        arm("t::panic", None, FaultAction::Panic);
        let r = run_isolated(|| hit("t::panic", 0));
        let msg = r.unwrap_err();
        assert!(msg.contains("t::panic"), "got: {msg}");
        assert_eq!(armed_count(), 0);
        reset();
    }

    #[test]
    fn relock_recovers_poison() {
        let m = Mutex::new(41);
        let _ = run_isolated(|| {
            let _guard = m.lock().unwrap();
            panic!("poison it");
        });
        assert!(m.is_poisoned());
        *relock(&m) += 1;
        assert_eq!(*relock(&m), 42);
    }
}
