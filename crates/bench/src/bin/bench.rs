//! `bench` — the substrate performance tracker.
//!
//! Times the state substrate before/after the word-parallel rewrite on the
//! §IX benchmark sets and emits `BENCH_substrates.json` so the performance
//! trajectory is tracked from PR to PR:
//!
//! * `reach_naive_ms` / `reach_interned_ms` — `ReachabilityGraph::build_naive`
//!   (the seed's `HashMap<Marking, StateId>` engine) vs the interned +
//!   mask-based engine;
//! * `conc_naive_ms` / `conc_batched_ms` — pairwise-worklist vs batched
//!   word-parallel concurrency fixpoint;
//! * `synth_ms` — the full structural synthesis flow;
//! * `shard_scaling` — the sharded parallel reachability engine
//!   (`ReachabilityGraph::build_sharded`) against the sequential engine on
//!   the exponentially-growing `clatch(n)` family, at 1/2/4/8 shards;
//! * `minimizer_backends` — literal counts and wall time of the pluggable
//!   two-level minimizer backends (espresso / exact / bdd / auto) on the
//!   complex-gate synthesis of the large set;
//! * `product_exploration` — the spec×circuit conformance product on the
//!   generic explorers (`si_petri::space`): wall time and states/s of the
//!   sequential vs sharded exploration on the large set (the probe graph
//!   is cached per engine, so only the product walk is timed);
//! * `csc_resolution` — the CSC resolve subsystem on the conflicted
//!   `vme_read_raw` / `vme_chain(n)` / `vme_burst(n)` workloads at one
//!   worker thread: end-to-end wall time of the pre-subsystem blind
//!   search (full context rebuild per candidate) vs the conflict-core
//!   greedy search (incremental re-analysis), plus the per-candidate
//!   structural-evaluation rate on both paths;
//! * `symbolic_reachability` — the symbolic BDD backend
//!   (`si_petri::SymbolicReach`) against the explicit enumerating engine
//!   on the `clatch(n)` and `vme_burst(n)` sweeps: wall time of both,
//!   fixpoint iteration count and peak BDD node count, including a
//!   beyond-the-cap workload the explicit engine cannot finish;
//! * `protocol_deadlock` — the CFSM deadlock checker
//!   (`si_proto::check_deadlock_with`) on the clean `ring(n)` and the
//!   deadlocking `dining(n)` families: wall time, states/s and speedup of
//!   the sequential vs sharded exploration at 1/2/4/8 shards (the check
//!   is exhaustive, so every engine walks the identical state space);
//! * `artifact_cache` — the serve layer's content-addressed response
//!   cache (`si_serve::Service`) on the large-set synth workloads: cold
//!   latency (full structural synthesis into a fresh store) vs warm
//!   latency (the identical request answered from the cache, i.e.
//!   canonicalize + hash + lookup only);
//! * `tracing_overhead` — the identical reachability workload with the
//!   `si_obs` switch off (the default: every probe is one relaxed atomic
//!   load) and on (spans, counters and histograms recorded), pinning the
//!   cost of the observability layer in both states.
//!
//! ```text
//! bench [--iters N] [--smoke] [--cap N] [--out FILE]
//!
//!   --iters N   timing iterations per measurement, best-of (default 5;
//!               the shard-scaling sweep tapers it on big workloads)
//!   --smoke     single iteration, small cap — CI bitrot check
//!   --cap N     reachability state cap, all sections (default 4_000_000,
//!               which admits clatch(20)'s 2_097_152 markings)
//!   --out FILE  output path (default BENCH_substrates.json)
//! ```

use si_bench::{fmt_duration, large_set, small_set};
use si_boolean::MinimizerChoice;
use si_core::{synthesize, Architecture, SynthesisOptions};
use si_petri::{ConcurrencyRelation, ReachabilityGraph, SymbolicReach};
use si_stg::Stg;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct Config {
    iters: usize,
    cap: usize,
    out: String,
    smoke: bool,
}

/// One workload of the shard-scaling section.
struct ShardEntry {
    name: String,
    places: usize,
    transitions: usize,
    states: usize,
    /// Shard count -> best-of wall time (index-aligned with the configured
    /// shard counts; `[0]` is the sequential engine).
    times: Vec<(usize, Duration)>,
}

struct Entry {
    set: &'static str,
    name: String,
    places: usize,
    transitions: usize,
    states: Option<usize>,
    reach_naive: Option<Duration>,
    reach_interned: Option<Duration>,
    conc_naive: Duration,
    conc_batched: Duration,
    synth: Option<Duration>,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        iters: 5,
        cap: 4_000_000,
        out: "BENCH_substrates.json".to_string(),
        smoke: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--iters" => {
                cfg.iters = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .unwrap_or_else(|| die("--iters needs a positive number"))
            }
            "--cap" => {
                cfg.cap = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--cap needs a number"))
            }
            "--out" => cfg.out = argv.next().unwrap_or_else(|| die("--out needs a path")),
            "--smoke" => {
                cfg.iters = 1;
                cfg.cap = 100_000;
                cfg.smoke = true;
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }
    cfg
}

fn die(msg: &str) -> ! {
    eprintln!("bench: {msg}");
    eprintln!("usage: bench [--iters N] [--smoke] [--cap N] [--out FILE]");
    std::process::exit(2);
}

/// Best-of-N wall time of `f`, discarding the results.
fn best_of<T>(iters: usize, mut f: impl FnMut() -> T) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed());
    }
    best
}

fn measure(set: &'static str, stg: &Stg, cfg: &Config) -> Entry {
    let net = stg.net();
    let states = ReachabilityGraph::build(net, cfg.cap)
        .ok()
        .map(|rg| rg.state_count());
    let reach_interned = states.is_some().then(|| {
        best_of(cfg.iters, || {
            ReachabilityGraph::build(net, cfg.cap).unwrap()
        })
    });
    let reach_naive = states.is_some().then(|| {
        best_of(cfg.iters, || {
            ReachabilityGraph::build_naive(net, cfg.cap).unwrap()
        })
    });
    let conc_batched = best_of(cfg.iters, || ConcurrencyRelation::compute(net));
    let conc_naive = best_of(cfg.iters, || ConcurrencyRelation::compute_naive(net));
    let synth = synthesize(stg, &SynthesisOptions::default())
        .is_ok()
        .then(|| {
            best_of(cfg.iters, || {
                synthesize(stg, &SynthesisOptions::default()).unwrap()
            })
        });
    Entry {
        set,
        name: stg.name().to_string(),
        places: net.place_count(),
        transitions: net.transition_count(),
        states,
        reach_naive,
        reach_interned,
        conc_naive,
        conc_batched,
        synth,
    }
}

/// Times the sequential engine (shard count 1) and the sharded engine on
/// the `clatch(n)` family — the workloads whose reachability graph is the
/// whole cost. Honors `--cap` (workloads over the cap are skipped with a
/// note) and `--iters`, tapering iterations as the state count grows so
/// the full sweep stays affordable.
fn measure_shard_scaling(cfg: &Config) -> (usize, Vec<usize>, Vec<ShardEntry>) {
    let cap = cfg.cap;
    let (sizes, counts): (Vec<usize>, Vec<usize>) = if cfg.smoke {
        (vec![10], vec![1, 2])
    } else {
        (vec![14, 16, 18, 20], vec![1, 2, 4, 8])
    };
    debug_assert_eq!(counts[0], 1, "the sweep leads with the sequential engine");
    let mut entries = Vec::new();
    for n in sizes {
        let stg = si_stg::generators::clatch(n);
        let net = stg.net();
        // The first sequential build doubles as the state-count probe (and
        // the skip check), so the most expensive graph is never built
        // untimed.
        let t0 = Instant::now();
        let states = match ReachabilityGraph::build(net, cap) {
            Ok(rg) => rg.state_count(),
            Err(e) => {
                eprintln!("shard-scaling: clatch({n}) skipped ({e})");
                continue;
            }
        };
        let first_seq = t0.elapsed();
        // Best-of tapering: 2M-state workloads get one shot per engine.
        let iters = if states > 600_000 {
            1
        } else {
            cfg.iters.min(3)
        };
        let mut times = Vec::new();
        for &k in &counts {
            let extra = if k == 1 { iters - 1 } else { iters };
            let mut d = best_of(extra, || {
                ReachabilityGraph::build_sharded(net, cap, k).unwrap()
            });
            if k == 1 {
                d = d.min(first_seq);
            }
            times.push((k, d));
        }
        eprint!("shard/clatch_{n} ({states} states):");
        for &(k, d) in &times {
            eprint!(" {k}={}", fmt_duration(d));
        }
        eprintln!();
        entries.push(ShardEntry {
            name: stg.name().to_string(),
            places: net.place_count(),
            transitions: net.transition_count(),
            states,
            times,
        });
    }
    (cap, counts, entries)
}

/// One workload of the minimizer-backend section.
struct MinimizerEntry {
    name: String,
    /// Backend name -> (literal area, best-of wall time); input order
    /// follows [`MinimizerChoice::ALL`].
    per_backend: Vec<(&'static str, usize, Duration)>,
}

/// Times every minimizer backend on the complex-gate synthesis (the
/// architecture whose covers are plain two-level problems) of the large
/// set. Workloads the structural flow rejects are skipped.
fn measure_minimizer_backends(cfg: &Config) -> Vec<MinimizerEntry> {
    let mut entries = Vec::new();
    for stg in large_set() {
        let mut per_backend = Vec::new();
        for choice in MinimizerChoice::ALL {
            let opts = SynthesisOptions {
                architecture: Architecture::ComplexGate,
                minimizer: choice,
                ..Default::default()
            };
            let Ok(first) = synthesize(&stg, &opts) else {
                break;
            };
            let d = best_of(cfg.iters.min(3), || synthesize(&stg, &opts).unwrap());
            per_backend.push((choice.name(), first.literal_area, d));
        }
        if per_backend.is_empty() {
            eprintln!("minimizers/{}: skipped (not synthesizable)", stg.name());
            continue;
        }
        eprint!("minimizers/{}:", stg.name());
        for &(name, lits, d) in &per_backend {
            eprint!(" {name}={lits}lit/{}", fmt_duration(d));
        }
        eprintln!();
        entries.push(MinimizerEntry {
            name: stg.name().to_string(),
            per_backend,
        });
    }
    entries
}

/// One workload of the product-exploration section.
struct ProductEntry {
    name: String,
    /// Product states of the (conformant) synthesized circuit.
    product_states: usize,
    /// Shard count -> best-of wall time of the product exploration
    /// (`[0]` is the sequential explorer).
    times: Vec<(usize, Duration)>,
}

/// Times the conformance product of each large-set member's synthesized
/// circuit on the sequential and sharded explorers. Each engine caches
/// its probe graph before the timed loop, so the measurement isolates the
/// product walk itself.
fn measure_product_exploration(cfg: &Config) -> (Vec<usize>, Vec<ProductEntry>) {
    use si_verify::EngineVerify;
    let counts: Vec<usize> = if cfg.smoke {
        vec![1, 2]
    } else {
        vec![1, 2, 4, 8]
    };
    debug_assert_eq!(counts[0], 1, "the sweep leads with the sequential explorer");
    let mut entries = Vec::new();
    for stg in large_set() {
        let Ok(syn) = synthesize(&stg, &SynthesisOptions::default()) else {
            eprintln!("product/{}: skipped (not synthesizable)", stg.name());
            continue;
        };
        let mut times = Vec::new();
        let mut product_states = 0usize;
        let mut skipped = false;
        for &k in &counts {
            let engine = si_core::Engine::new(&stg).cap(cfg.cap).shards(k);
            if engine.reachability().is_err() {
                eprintln!("product/{}: skipped (probe over cap)", stg.name());
                skipped = true;
                break;
            }
            let Ok(first) = engine.check_conformance(&syn.circuit) else {
                eprintln!("product/{}: skipped (exploration error)", stg.name());
                skipped = true;
                break;
            };
            if !first.is_ok() {
                eprintln!("product/{}: skipped (inconclusive or failing)", stg.name());
                skipped = true;
                break;
            }
            product_states = first.states_explored;
            let d = best_of(cfg.iters.min(3), || engine.check_conformance(&syn.circuit));
            times.push((k, d));
        }
        if skipped || times.is_empty() {
            continue;
        }
        eprint!("product/{} ({product_states} states):", stg.name());
        for &(k, d) in &times {
            eprint!(" {k}={}", fmt_duration(d));
        }
        eprintln!();
        entries.push(ProductEntry {
            name: stg.name().to_string(),
            product_states,
            times,
        });
    }
    (counts, entries)
}

/// One workload of the CSC-resolution section.
struct CscEntry {
    name: String,
    places: usize,
    transitions: usize,
    /// End-to-end blind search (full rebuild per candidate).
    blind: Duration,
    /// End-to-end conflict-core greedy search (incremental re-analysis).
    greedy: Duration,
    /// End-to-end beam search.
    beam: Duration,
    /// Candidates the greedy search structurally evaluated.
    greedy_evaluated: usize,
    /// Per-candidate structural evaluation over a fixed plan sample:
    /// full rebuild vs incremental re-analysis (total over the sample).
    sample: usize,
    rebuild: Duration,
    reanalyze: Duration,
}

/// Times the resolve subsystem against the pre-subsystem blind baseline
/// on conflicted workloads, at one scoring worker (`--smoke` shrinks the
/// family sweep). Both paths run the same acceptance-oracle cap.
fn measure_csc_resolution(cfg: &Config) -> (usize, usize, Vec<CscEntry>) {
    use si_csc::{
        conflict_cores, resolve, resolve_csc_blind, targeted_candidates, CscOptions, Strategy,
    };
    let oracle_cap = 1_000_000.min(cfg.cap);
    let budget = 2_000_000;
    let reach = si_petri::ReachOptions::with_cap(oracle_cap);
    let mut workloads = vec![si_stg::benchmarks::vme_read_raw()];
    let sizes: &[usize] = if cfg.smoke { &[2] } else { &[4, 8, 12] };
    for &n in sizes {
        workloads.push(si_stg::generators::vme_chain(n));
    }
    workloads.push(si_stg::generators::vme_burst(if cfg.smoke { 2 } else { 4 }));
    let mut entries = Vec::new();
    for stg in workloads {
        let iters = cfg.iters.min(3);
        let blind = best_of(iters, || resolve_csc_blind(&stg, budget, reach.clone()));
        let opts = CscOptions::default()
            .budget(budget)
            .reach(reach.clone())
            .workers(1);
        // The search is deterministic, so the stats of the timed runs are
        // interchangeable — capture them from inside the loop instead of
        // paying one extra untimed resolve.
        let mut evaluated = 0;
        let greedy = best_of(iters, || {
            evaluated = resolve(&stg, &opts).stats.evaluated;
        });
        let beam = best_of(iters, || {
            resolve(&stg, &opts.clone().strategy(Strategy::Beam))
        });
        // Per-candidate structural evaluation on a fixed plan sample.
        let (parent, trace) = si_core::StructuralContext::build_traced(&stg).unwrap();
        let cores = conflict_cores(&parent);
        let plans = targeted_candidates(&parent, &cores, 100);
        let rebuild = best_of(iters, || {
            for plan in &plans {
                let (cand, _) = si_stg::apply_insertion_mapped(&stg, "cscx", plan);
                if let Ok(ctx) = si_core::StructuralContext::build(&cand) {
                    std::hint::black_box(ctx.csc_holds());
                }
            }
        });
        let reanalyze = best_of(iters, || {
            for plan in &plans {
                let (cand, map) = si_stg::apply_insertion_mapped(&stg, "cscx", plan);
                if let Ok(ctx) =
                    si_core::StructuralContext::build_incremental(&parent, &trace, &cand, &map)
                {
                    std::hint::black_box(ctx.csc_holds());
                }
            }
        });
        eprintln!(
            "csc/{}: blind {} greedy {} ({} cand) beam {} | sample x{}: rebuild {} reanalyze {}",
            stg.name(),
            fmt_duration(blind),
            fmt_duration(greedy),
            evaluated,
            fmt_duration(beam),
            plans.len(),
            fmt_duration(rebuild),
            fmt_duration(reanalyze),
        );
        entries.push(CscEntry {
            name: stg.name().to_string(),
            places: stg.net().place_count(),
            transitions: stg.net().transition_count(),
            blind,
            greedy,
            beam,
            greedy_evaluated: evaluated,
            sample: plans.len(),
            rebuild,
            reanalyze,
        });
    }
    (oracle_cap, budget, entries)
}

/// One workload of the symbolic-reachability section.
struct SymbolicEntry {
    name: String,
    places: usize,
    transitions: usize,
    /// Reachable markings (the symbolic fixpoint always finishes).
    states: u128,
    /// Explicit enumerating build; `None` if the state cap was exceeded.
    explicit: Option<Duration>,
    symbolic: Duration,
    iterations: usize,
    peak_nodes: usize,
}

/// Times the symbolic BDD reachability fixpoint against the explicit
/// enumerating engine on the `clatch(n)` / `vme_burst(n)` sweeps, plus a
/// beyond-the-cap `clatch` instance the explicit engine cannot finish
/// (its column is recorded as `null`). Differential equivalence of the
/// two backends is pinned elsewhere (`crates/petri/tests/prop_symbolic.rs`);
/// this section only tracks cost.
fn measure_symbolic_reachability(cfg: &Config) -> Vec<SymbolicEntry> {
    use si_stg::generators::{clatch, vme_burst};
    let workloads: Vec<Stg> = if cfg.smoke {
        vec![clatch(10), vme_burst(2)]
    } else {
        // clatch(22) (2^23 markings) overflows the 4M default cap: the
        // explicit column goes null, the symbolic one still finishes.
        vec![
            clatch(14),
            clatch(16),
            clatch(18),
            clatch(20),
            clatch(22),
            vme_burst(2),
            vme_burst(4),
            vme_burst(6),
        ]
    };
    let mut entries = Vec::new();
    for stg in &workloads {
        let net = stg.net();
        // The first explicit build doubles as the timing of a cap probe.
        let t0 = Instant::now();
        let explicit_states = ReachabilityGraph::build(net, cfg.cap)
            .ok()
            .map(|rg| rg.state_count());
        let first_explicit = t0.elapsed();
        let explicit = explicit_states.map(|states| {
            let iters = if states > 600_000 {
                0
            } else {
                cfg.iters.min(3) - 1
            };
            (0..iters)
                .map(|_| best_of(1, || ReachabilityGraph::build(net, cfg.cap).unwrap()))
                .fold(first_explicit, Duration::min)
        });
        let t0 = Instant::now();
        let sym = SymbolicReach::build(net).expect("generator nets are safe");
        let symbolic = (1..cfg.iters.min(3))
            .map(|_| best_of(1, || SymbolicReach::build(net).unwrap()))
            .fold(t0.elapsed(), Duration::min);
        eprintln!(
            "symbolic/{} ({} states): explicit {} | symbolic {} ({} iters, {} peak nodes)",
            stg.name(),
            sym.state_count(),
            explicit.map(fmt_duration).unwrap_or_else(|| "-".into()),
            fmt_duration(symbolic),
            sym.iterations(),
            sym.peak_nodes(),
        );
        entries.push(SymbolicEntry {
            name: stg.name().to_string(),
            places: net.place_count(),
            transitions: net.transition_count(),
            states: sym.state_count(),
            explicit,
            symbolic,
            iterations: sym.iterations(),
            peak_nodes: sym.peak_nodes(),
        });
    }
    entries
}

/// One workload of the artifact-cache section.
struct CacheEntry {
    name: String,
    signals: usize,
    /// Full structural synthesis into a fresh store.
    cold: Duration,
    /// The identical request against the primed store (response-cache
    /// hit: canonicalize + hash + lookup, no synthesis).
    warm: Duration,
}

/// Times the serve layer's content-addressed artifact cache on the
/// large-set synth workloads. Workloads the structural flow rejects are
/// skipped (their failure responses are cached too, but the cold column
/// would not measure a synthesis).
fn measure_artifact_cache(cfg: &Config) -> Vec<CacheEntry> {
    use si_serve::{json, ArtifactStore, Service};
    use std::sync::Arc;
    let mut entries = Vec::new();
    for stg in large_set() {
        let spec = si_stg::write_g(&stg);
        let line = format!("{{\"op\": \"synth\", \"spec\": {}}}", json::escape(&spec));
        let service = Service::new(Arc::new(ArtifactStore::in_memory(64 << 20)));
        let first = service.execute(&line);
        let ok = json::parse(&first.body)
            .ok()
            .and_then(|v| v.get("ok").and_then(json::Value::as_bool))
            == Some(true);
        if !ok {
            eprintln!("cache/{}: skipped (not synthesizable)", stg.name());
            continue;
        }
        let iters = cfg.iters.min(3);
        let cold = best_of(iters, || {
            Service::new(Arc::new(ArtifactStore::in_memory(64 << 20))).execute(&line)
        });
        let warm = best_of(iters, || service.execute(&line));
        eprintln!(
            "cache/{}: cold {} warm {}",
            stg.name(),
            fmt_duration(cold),
            fmt_duration(warm)
        );
        entries.push(CacheEntry {
            name: stg.name().to_string(),
            signals: stg.synthesized_signals().len(),
            cold,
            warm,
        });
    }
    entries
}

/// One workload of the tracing-overhead section.
struct OverheadEntry {
    name: String,
    states: usize,
    untraced: Duration,
    traced: Duration,
}

/// Times the identical reachability workload with the observability
/// switch off (the default; every probe degenerates to one relaxed
/// atomic load) and on (spans, counters and histograms recorded at the
/// amortized budget checkpoints). The registry is cleared between traced
/// iterations so its size stays constant across the sweep.
fn measure_tracing_overhead(cfg: &Config) -> Vec<OverheadEntry> {
    let workloads: Vec<Stg> = if cfg.smoke {
        vec![si_stg::generators::clatch(8)]
    } else {
        vec![
            si_stg::generators::clatch(12),
            si_stg::generators::clatch(16),
            si_stg::generators::muller_pipeline(12),
            si_stg::generators::philosophers(7),
        ]
    };
    let mut entries = Vec::new();
    for stg in &workloads {
        let Ok(rg) = ReachabilityGraph::build(stg.net(), cfg.cap) else {
            eprintln!("tracing/{}: skipped (over cap)", stg.name());
            continue;
        };
        let states = rg.state_count();
        drop(rg);
        si_obs::set_enabled(false);
        let untraced = best_of(cfg.iters, || ReachabilityGraph::build(stg.net(), cfg.cap));
        si_obs::set_enabled(true);
        let traced = best_of(cfg.iters, || {
            let rg = ReachabilityGraph::build(stg.net(), cfg.cap);
            si_obs::reset();
            rg
        });
        si_obs::set_enabled(false);
        si_obs::reset();
        eprintln!(
            "tracing/{}: untraced {} traced {}",
            stg.name(),
            fmt_duration(untraced),
            fmt_duration(traced)
        );
        entries.push(OverheadEntry {
            name: stg.name().to_string(),
            states,
            untraced,
            traced,
        });
    }
    entries
}

/// One workload of the protocol-deadlock section.
struct ProtoEntry {
    name: String,
    modules: usize,
    channels: usize,
    /// Global states the exhaustive deadlock check explored.
    states: usize,
    violations: usize,
    /// Shard count -> best-of wall time of the full check (`[0]` is the
    /// sequential explorer).
    times: Vec<(usize, Duration)>,
}

/// Times the CFSM deadlock checker (`si_proto::check_deadlock_with`) on
/// the clean `ring(n)` family and the deadlocking `dining(n)` family, at
/// the same shard counts as the other exploration sections. The check is
/// exhaustive either way (violations do not stop the sweep), so sharded
/// and sequential runs walk the identical state space.
fn measure_protocol_deadlock(cfg: &Config) -> (Vec<usize>, Vec<ProtoEntry>) {
    let counts: Vec<usize> = if cfg.smoke {
        vec![1, 2]
    } else {
        vec![1, 2, 4, 8]
    };
    debug_assert_eq!(counts[0], 1, "the sweep leads with the sequential explorer");
    let workloads: Vec<si_proto::ProtoSystem> = if cfg.smoke {
        vec![si_proto::ring(4), si_proto::dining(3)]
    } else {
        // ring(16) (>4M global states) overflows the default cap and
        // would be skipped; ring(14)'s 1.18M states are the ceiling.
        vec![
            si_proto::ring(10),
            si_proto::ring(14),
            si_proto::dining(8),
            si_proto::dining(12),
        ]
    };
    let mut entries = Vec::new();
    for sys in &workloads {
        let check = |shards: usize| {
            let mut reach = si_petri::ReachOptions::with_cap(cfg.cap);
            reach.shards = shards;
            si_proto::check_deadlock_with(sys, reach).expect("no worker panics")
        };
        // The first sequential run doubles as the cap probe and supplies
        // the verdict columns.
        let t0 = Instant::now();
        let probe = check(1);
        let first_seq = t0.elapsed();
        if probe.interrupted.is_some() {
            eprintln!("proto/{}: skipped (over the cap)", sys.name());
            continue;
        }
        let iters = cfg.iters.min(3);
        let mut times = Vec::new();
        for &k in &counts {
            let extra = if k == 1 { iters - 1 } else { iters };
            let mut d = best_of(extra, || check(k));
            if k == 1 {
                d = d.min(first_seq);
            }
            times.push((k, d));
        }
        eprint!(
            "proto/{} ({} states, {} violations):",
            sys.name(),
            probe.states_explored,
            probe.violations.len()
        );
        for &(k, d) in &times {
            eprint!(" {k}={}", fmt_duration(d));
        }
        eprintln!();
        entries.push(ProtoEntry {
            name: sys.name().to_string(),
            modules: sys.modules().len(),
            channels: sys.channels().len(),
            states: probe.states_explored,
            violations: probe.violations.len(),
            times,
        });
    }
    (counts, entries)
}

fn json_ms(d: Option<Duration>) -> String {
    match d {
        Some(d) => format!("{:.6}", d.as_secs_f64() * 1e3),
        None => "null".to_string(),
    }
}

fn json_speedup(naive: Option<Duration>, fast: Option<Duration>) -> String {
    match (naive, fast) {
        (Some(n), Some(f)) if !f.is_zero() => {
            format!("{:.3}", n.as_secs_f64() / f.as_secs_f64())
        }
        _ => "null".to_string(),
    }
}

fn main() {
    let cfg = parse_args();
    let mut entries = Vec::new();
    for (set, stgs) in [("small", small_set()), ("large", large_set())] {
        for stg in &stgs {
            eprint!("{set}/{} ...", stg.name());
            let e = measure(set, stg, &cfg);
            eprintln!(
                " reach {} -> {} | conc {} -> {} | synth {}",
                e.reach_naive
                    .map(fmt_duration)
                    .unwrap_or_else(|| "-".into()),
                e.reach_interned
                    .map(fmt_duration)
                    .unwrap_or_else(|| "-".into()),
                fmt_duration(e.conc_naive),
                fmt_duration(e.conc_batched),
                e.synth.map(fmt_duration).unwrap_or_else(|| "-".into()),
            );
            entries.push(e);
        }
    }

    let (shard_cap, shard_counts, shard_entries) = measure_shard_scaling(&cfg);
    let minimizer_entries = measure_minimizer_backends(&cfg);
    let (product_counts, product_entries) = measure_product_exploration(&cfg);
    let (csc_cap, csc_budget, csc_entries) = measure_csc_resolution(&cfg);
    let symbolic_entries = measure_symbolic_reachability(&cfg);
    let (proto_counts, proto_entries) = measure_protocol_deadlock(&cfg);
    let cache_entries = measure_artifact_cache(&cfg);
    let overhead_entries = measure_tracing_overhead(&cfg);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"sisyn/bench-substrates/v9\",");
    let _ = writeln!(json, "  \"iters\": {},", cfg.iters);
    let _ = writeln!(json, "  \"state_cap\": {},", cfg.cap);
    let _ = writeln!(
        json,
        "  \"timing\": \"best-of-iters wall time, milliseconds\","
    );
    let _ = writeln!(json, "  \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"set\": \"{}\",", e.set);
        let _ = writeln!(json, "      \"name\": \"{}\",", e.name);
        let _ = writeln!(json, "      \"places\": {},", e.places);
        let _ = writeln!(json, "      \"transitions\": {},", e.transitions);
        let _ = writeln!(
            json,
            "      \"states\": {},",
            e.states
                .map(|s| s.to_string())
                .unwrap_or_else(|| "null".into())
        );
        let _ = writeln!(
            json,
            "      \"reach_naive_ms\": {},",
            json_ms(e.reach_naive)
        );
        let _ = writeln!(
            json,
            "      \"reach_interned_ms\": {},",
            json_ms(e.reach_interned)
        );
        let _ = writeln!(
            json,
            "      \"reach_speedup\": {},",
            json_speedup(e.reach_naive, e.reach_interned)
        );
        let _ = writeln!(
            json,
            "      \"conc_naive_ms\": {},",
            json_ms(Some(e.conc_naive))
        );
        let _ = writeln!(
            json,
            "      \"conc_batched_ms\": {},",
            json_ms(Some(e.conc_batched))
        );
        let _ = writeln!(
            json,
            "      \"conc_speedup\": {},",
            json_speedup(Some(e.conc_naive), Some(e.conc_batched))
        );
        let _ = writeln!(json, "      \"synth_ms\": {}", json_ms(e.synth));
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < entries.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    // Shard-scaling section: the sharded reachability engine vs the
    // sequential one (shard count 1) on the clatch family.
    let _ = writeln!(json, "  \"shard_scaling\": {{");
    let _ = writeln!(json, "    \"state_cap\": {shard_cap},");
    let _ = writeln!(
        json,
        "    \"shard_counts\": [{}],",
        shard_counts
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        json,
        "    \"hardware_threads\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let _ = writeln!(json, "    \"entries\": [");
    for (i, e) in shard_entries.iter().enumerate() {
        let _ = writeln!(json, "      {{");
        let _ = writeln!(json, "        \"name\": \"{}\",", e.name);
        let _ = writeln!(json, "        \"places\": {},", e.places);
        let _ = writeln!(json, "        \"transitions\": {},", e.transitions);
        let _ = writeln!(json, "        \"states\": {},", e.states);
        let _ = writeln!(
            json,
            "        \"reach_ms\": {{{}}},",
            e.times
                .iter()
                .map(|&(k, d)| format!("\"{k}\": {}", json_ms(Some(d))))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let seq = e.times[0].1;
        let _ = writeln!(
            json,
            "        \"speedup_vs_seq\": {{{}}}",
            e.times[1..]
                .iter()
                .map(|&(k, d)| format!("\"{k}\": {}", json_speedup(Some(seq), Some(d))))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(
            json,
            "      }}{}",
            if i + 1 < shard_entries.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    // Minimizer-backend section: literal counts and wall time per backend
    // on the complex-gate synthesis of the large set.
    let _ = writeln!(json, "  \"minimizer_backends\": {{");
    let _ = writeln!(json, "    \"architecture\": \"complex-gate\",");
    let _ = writeln!(
        json,
        "    \"backends\": [{}],",
        MinimizerChoice::ALL
            .iter()
            .map(|c| format!("\"{}\"", c.name()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(json, "    \"entries\": [");
    for (i, e) in minimizer_entries.iter().enumerate() {
        let _ = writeln!(json, "      {{");
        let _ = writeln!(json, "        \"name\": \"{}\",", e.name);
        let _ = writeln!(
            json,
            "        \"literals\": {{{}}},",
            e.per_backend
                .iter()
                .map(|&(n, lits, _)| format!("\"{n}\": {lits}"))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(
            json,
            "        \"synth_ms\": {{{}}}",
            e.per_backend
                .iter()
                .map(|&(n, _, d)| format!("\"{n}\": {}", json_ms(Some(d))))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(
            json,
            "      }}{}",
            if i + 1 < minimizer_entries.len() {
                ","
            } else {
                ""
            }
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    // Product-exploration section: the conformance product on the generic
    // sequential vs sharded explorers, large set.
    let _ = writeln!(json, "  \"product_exploration\": {{");
    let _ = writeln!(json, "    \"state_cap\": {},", cfg.cap);
    let _ = writeln!(
        json,
        "    \"shard_counts\": [{}],",
        product_counts
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        json,
        "    \"hardware_threads\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let _ = writeln!(json, "    \"entries\": [");
    for (i, e) in product_entries.iter().enumerate() {
        let _ = writeln!(json, "      {{");
        let _ = writeln!(json, "        \"name\": \"{}\",", e.name);
        let _ = writeln!(json, "        \"product_states\": {},", e.product_states);
        let _ = writeln!(
            json,
            "        \"conform_ms\": {{{}}},",
            e.times
                .iter()
                .map(|&(k, d)| format!("\"{k}\": {}", json_ms(Some(d))))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(
            json,
            "        \"states_per_s\": {{{}}},",
            e.times
                .iter()
                .map(|&(k, d)| {
                    let rate = if d.is_zero() {
                        "null".to_string()
                    } else {
                        format!("{:.0}", e.product_states as f64 / d.as_secs_f64())
                    };
                    format!("\"{k}\": {rate}")
                })
                .collect::<Vec<_>>()
                .join(", ")
        );
        let seq = e.times[0].1;
        let _ = writeln!(
            json,
            "        \"speedup_vs_seq\": {{{}}}",
            e.times[1..]
                .iter()
                .map(|&(k, d)| format!("\"{k}\": {}", json_speedup(Some(seq), Some(d))))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(
            json,
            "      }}{}",
            if i + 1 < product_entries.len() {
                ","
            } else {
                ""
            }
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    // CSC-resolution section: blind baseline vs conflict-core subsystem,
    // one scoring worker.
    let _ = writeln!(json, "  \"csc_resolution\": {{");
    let _ = writeln!(json, "    \"oracle_cap\": {csc_cap},");
    let _ = writeln!(json, "    \"budget\": {csc_budget},");
    let _ = writeln!(json, "    \"workers\": 1,");
    let _ = writeln!(json, "    \"entries\": [");
    for (i, e) in csc_entries.iter().enumerate() {
        let _ = writeln!(json, "      {{");
        let _ = writeln!(json, "        \"name\": \"{}\",", e.name);
        let _ = writeln!(json, "        \"places\": {},", e.places);
        let _ = writeln!(json, "        \"transitions\": {},", e.transitions);
        let _ = writeln!(
            json,
            "        \"resolve_blind_ms\": {},",
            json_ms(Some(e.blind))
        );
        let _ = writeln!(
            json,
            "        \"resolve_greedy_ms\": {},",
            json_ms(Some(e.greedy))
        );
        let _ = writeln!(
            json,
            "        \"resolve_beam_ms\": {},",
            json_ms(Some(e.beam))
        );
        let _ = writeln!(
            json,
            "        \"end_to_end_speedup\": {},",
            json_speedup(Some(e.blind), Some(e.greedy))
        );
        let _ = writeln!(
            json,
            "        \"greedy_candidates\": {},",
            e.greedy_evaluated
        );
        let _ = writeln!(json, "        \"sample_candidates\": {},", e.sample);
        let rate = |d: Duration| {
            if d.is_zero() {
                "null".to_string()
            } else {
                format!("{:.0}", e.sample as f64 / d.as_secs_f64())
            }
        };
        let _ = writeln!(
            json,
            "        \"rebuild_candidates_per_s\": {},",
            rate(e.rebuild)
        );
        let _ = writeln!(
            json,
            "        \"reanalyze_candidates_per_s\": {},",
            rate(e.reanalyze)
        );
        let _ = writeln!(
            json,
            "        \"reanalyze_speedup\": {}",
            json_speedup(Some(e.rebuild), Some(e.reanalyze))
        );
        let _ = writeln!(
            json,
            "      }}{}",
            if i + 1 < csc_entries.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    // Symbolic-reachability section: the BDD fixpoint vs the explicit
    // enumerating engine (null where the cap overflows).
    let _ = writeln!(json, "  \"symbolic_reachability\": {{");
    let _ = writeln!(json, "    \"state_cap\": {},", cfg.cap);
    let _ = writeln!(json, "    \"entries\": [");
    for (i, e) in symbolic_entries.iter().enumerate() {
        let _ = writeln!(json, "      {{");
        let _ = writeln!(json, "        \"name\": \"{}\",", e.name);
        let _ = writeln!(json, "        \"places\": {},", e.places);
        let _ = writeln!(json, "        \"transitions\": {},", e.transitions);
        let _ = writeln!(json, "        \"states\": {},", e.states);
        let _ = writeln!(json, "        \"iterations\": {},", e.iterations);
        let _ = writeln!(json, "        \"peak_nodes\": {},", e.peak_nodes);
        let _ = writeln!(
            json,
            "        \"reach_explicit_ms\": {},",
            json_ms(e.explicit)
        );
        let _ = writeln!(
            json,
            "        \"reach_symbolic_ms\": {},",
            json_ms(Some(e.symbolic))
        );
        let _ = writeln!(
            json,
            "        \"symbolic_speedup\": {}",
            json_speedup(e.explicit, Some(e.symbolic))
        );
        let _ = writeln!(
            json,
            "      }}{}",
            if i + 1 < symbolic_entries.len() {
                ","
            } else {
                ""
            }
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    // Protocol-deadlock section: the CFSM deadlock checker on the generic
    // sequential vs sharded explorers, ring/dining families.
    let _ = writeln!(json, "  \"protocol_deadlock\": {{");
    let _ = writeln!(json, "    \"state_cap\": {},", cfg.cap);
    let _ = writeln!(
        json,
        "    \"shard_counts\": [{}],",
        proto_counts
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        json,
        "    \"hardware_threads\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let _ = writeln!(json, "    \"entries\": [");
    for (i, e) in proto_entries.iter().enumerate() {
        let _ = writeln!(json, "      {{");
        let _ = writeln!(json, "        \"name\": \"{}\",", e.name);
        let _ = writeln!(json, "        \"modules\": {},", e.modules);
        let _ = writeln!(json, "        \"channels\": {},", e.channels);
        let _ = writeln!(json, "        \"states\": {},", e.states);
        let _ = writeln!(json, "        \"violations\": {},", e.violations);
        let _ = writeln!(
            json,
            "        \"check_ms\": {{{}}},",
            e.times
                .iter()
                .map(|&(k, d)| format!("\"{k}\": {}", json_ms(Some(d))))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(
            json,
            "        \"states_per_s\": {{{}}},",
            e.times
                .iter()
                .map(|&(k, d)| {
                    let rate = if d.is_zero() {
                        "null".to_string()
                    } else {
                        format!("{:.0}", e.states as f64 / d.as_secs_f64())
                    };
                    format!("\"{k}\": {rate}")
                })
                .collect::<Vec<_>>()
                .join(", ")
        );
        let seq = e.times[0].1;
        let _ = writeln!(
            json,
            "        \"speedup_vs_seq\": {{{}}}",
            e.times[1..]
                .iter()
                .map(|&(k, d)| format!("\"{k}\": {}", json_speedup(Some(seq), Some(d))))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(
            json,
            "      }}{}",
            if i + 1 < proto_entries.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    // Artifact-cache section: cold (fresh store) vs warm (response-cache
    // hit) latency of the serve layer on the large-set synth workloads.
    let _ = writeln!(json, "  \"artifact_cache\": {{");
    let _ = writeln!(json, "    \"op\": \"synth\",");
    let _ = writeln!(json, "    \"store_bytes\": {},", 64usize << 20);
    let _ = writeln!(json, "    \"entries\": [");
    for (i, e) in cache_entries.iter().enumerate() {
        let _ = writeln!(json, "      {{");
        let _ = writeln!(json, "        \"name\": \"{}\",", e.name);
        let _ = writeln!(json, "        \"signals\": {},", e.signals);
        let _ = writeln!(json, "        \"cold_ms\": {},", json_ms(Some(e.cold)));
        let _ = writeln!(json, "        \"warm_ms\": {},", json_ms(Some(e.warm)));
        let _ = writeln!(
            json,
            "        \"warm_speedup\": {}",
            json_speedup(Some(e.cold), Some(e.warm))
        );
        let _ = writeln!(
            json,
            "      }}{}",
            if i + 1 < cache_entries.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    // Tracing-overhead section: the observability layer's cost with the
    // switch off (the shipping default) and on.
    let _ = writeln!(json, "  \"tracing_overhead\": {{");
    let _ = writeln!(json, "    \"workload\": \"ReachabilityGraph::build\",");
    let _ = writeln!(json, "    \"state_cap\": {},", cfg.cap);
    let _ = writeln!(json, "    \"entries\": [");
    for (i, e) in overhead_entries.iter().enumerate() {
        let _ = writeln!(json, "      {{");
        let _ = writeln!(json, "        \"name\": \"{}\",", e.name);
        let _ = writeln!(json, "        \"states\": {},", e.states);
        let _ = writeln!(
            json,
            "        \"untraced_ms\": {},",
            json_ms(Some(e.untraced))
        );
        let _ = writeln!(json, "        \"traced_ms\": {},", json_ms(Some(e.traced)));
        let overhead = if e.untraced.is_zero() {
            "null".to_string()
        } else {
            format!(
                "{:.4}",
                e.traced.as_secs_f64() / e.untraced.as_secs_f64() - 1.0
            )
        };
        let _ = writeln!(json, "        \"traced_overhead\": {overhead}");
        let _ = writeln!(
            json,
            "      }}{}",
            if i + 1 < overhead_entries.len() {
                ","
            } else {
                ""
            }
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    if let Err(e) = std::fs::write(&cfg.out, &json) {
        eprintln!("bench: cannot write {}: {e}", cfg.out);
        std::process::exit(1);
    }
    // Headline number: geometric-mean reachability speedup on the large set.
    let large: Vec<f64> = entries
        .iter()
        .filter(|e| e.set == "large")
        .filter_map(|e| match (e.reach_naive, e.reach_interned) {
            (Some(n), Some(f)) if !f.is_zero() => Some(n.as_secs_f64() / f.as_secs_f64()),
            _ => None,
        })
        .collect();
    if !large.is_empty() {
        let geo = (large.iter().map(|s| s.ln()).sum::<f64>() / large.len() as f64).exp();
        eprintln!("large-set reachability speedup (geomean): {geo:.2}x");
    }
    eprintln!("wrote {}", cfg.out);
}
