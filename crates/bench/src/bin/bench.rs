//! `bench` — the substrate performance tracker.
//!
//! Times the state substrate before/after the word-parallel rewrite on the
//! §IX benchmark sets and emits `BENCH_substrates.json` so the performance
//! trajectory is tracked from PR to PR:
//!
//! * `reach_naive_ms` / `reach_interned_ms` — `ReachabilityGraph::build_naive`
//!   (the seed's `HashMap<Marking, StateId>` engine) vs the interned +
//!   mask-based engine;
//! * `conc_naive_ms` / `conc_batched_ms` — pairwise-worklist vs batched
//!   word-parallel concurrency fixpoint;
//! * `synth_ms` — the full structural synthesis flow.
//!
//! ```text
//! bench [--iters N] [--smoke] [--cap N] [--out FILE]
//!
//!   --iters N   timing iterations per measurement, best-of (default 5)
//!   --smoke     single iteration, small cap — CI bitrot check
//!   --cap N     reachability state cap (default 2_000_000)
//!   --out FILE  output path (default BENCH_substrates.json)
//! ```

use si_bench::{fmt_duration, large_set, small_set};
use si_core::{synthesize, SynthesisOptions};
use si_petri::{ConcurrencyRelation, ReachabilityGraph};
use si_stg::Stg;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct Config {
    iters: usize,
    cap: usize,
    out: String,
}

struct Entry {
    set: &'static str,
    name: String,
    places: usize,
    transitions: usize,
    states: Option<usize>,
    reach_naive: Option<Duration>,
    reach_interned: Option<Duration>,
    conc_naive: Duration,
    conc_batched: Duration,
    synth: Option<Duration>,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        iters: 5,
        cap: 2_000_000,
        out: "BENCH_substrates.json".to_string(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--iters" => {
                cfg.iters = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--iters needs a number"))
            }
            "--cap" => {
                cfg.cap = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--cap needs a number"))
            }
            "--out" => cfg.out = argv.next().unwrap_or_else(|| die("--out needs a path")),
            "--smoke" => {
                cfg.iters = 1;
                cfg.cap = 100_000;
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }
    cfg
}

fn die(msg: &str) -> ! {
    eprintln!("bench: {msg}");
    eprintln!("usage: bench [--iters N] [--smoke] [--cap N] [--out FILE]");
    std::process::exit(2);
}

/// Best-of-N wall time of `f`, discarding the results.
fn best_of<T>(iters: usize, mut f: impl FnMut() -> T) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed());
    }
    best
}

fn measure(set: &'static str, stg: &Stg, cfg: &Config) -> Entry {
    let net = stg.net();
    let states = ReachabilityGraph::build(net, cfg.cap)
        .ok()
        .map(|rg| rg.state_count());
    let reach_interned = states.is_some().then(|| {
        best_of(cfg.iters, || {
            ReachabilityGraph::build(net, cfg.cap).unwrap()
        })
    });
    let reach_naive = states.is_some().then(|| {
        best_of(cfg.iters, || {
            ReachabilityGraph::build_naive(net, cfg.cap).unwrap()
        })
    });
    let conc_batched = best_of(cfg.iters, || ConcurrencyRelation::compute(net));
    let conc_naive = best_of(cfg.iters, || ConcurrencyRelation::compute_naive(net));
    let synth = synthesize(stg, &SynthesisOptions::default())
        .is_ok()
        .then(|| {
            best_of(cfg.iters, || {
                synthesize(stg, &SynthesisOptions::default()).unwrap()
            })
        });
    Entry {
        set,
        name: stg.name().to_string(),
        places: net.place_count(),
        transitions: net.transition_count(),
        states,
        reach_naive,
        reach_interned,
        conc_naive,
        conc_batched,
        synth,
    }
}

fn json_ms(d: Option<Duration>) -> String {
    match d {
        Some(d) => format!("{:.6}", d.as_secs_f64() * 1e3),
        None => "null".to_string(),
    }
}

fn json_speedup(naive: Option<Duration>, fast: Option<Duration>) -> String {
    match (naive, fast) {
        (Some(n), Some(f)) if !f.is_zero() => {
            format!("{:.3}", n.as_secs_f64() / f.as_secs_f64())
        }
        _ => "null".to_string(),
    }
}

fn main() {
    let cfg = parse_args();
    let mut entries = Vec::new();
    for (set, stgs) in [("small", small_set()), ("large", large_set())] {
        for stg in &stgs {
            eprint!("{set}/{} ...", stg.name());
            let e = measure(set, stg, &cfg);
            eprintln!(
                " reach {} -> {} | conc {} -> {} | synth {}",
                e.reach_naive
                    .map(fmt_duration)
                    .unwrap_or_else(|| "-".into()),
                e.reach_interned
                    .map(fmt_duration)
                    .unwrap_or_else(|| "-".into()),
                fmt_duration(e.conc_naive),
                fmt_duration(e.conc_batched),
                e.synth.map(fmt_duration).unwrap_or_else(|| "-".into()),
            );
            entries.push(e);
        }
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"sisyn/bench-substrates/v1\",");
    let _ = writeln!(json, "  \"iters\": {},", cfg.iters);
    let _ = writeln!(json, "  \"state_cap\": {},", cfg.cap);
    let _ = writeln!(
        json,
        "  \"timing\": \"best-of-iters wall time, milliseconds\","
    );
    let _ = writeln!(json, "  \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"set\": \"{}\",", e.set);
        let _ = writeln!(json, "      \"name\": \"{}\",", e.name);
        let _ = writeln!(json, "      \"places\": {},", e.places);
        let _ = writeln!(json, "      \"transitions\": {},", e.transitions);
        let _ = writeln!(
            json,
            "      \"states\": {},",
            e.states
                .map(|s| s.to_string())
                .unwrap_or_else(|| "null".into())
        );
        let _ = writeln!(
            json,
            "      \"reach_naive_ms\": {},",
            json_ms(e.reach_naive)
        );
        let _ = writeln!(
            json,
            "      \"reach_interned_ms\": {},",
            json_ms(e.reach_interned)
        );
        let _ = writeln!(
            json,
            "      \"reach_speedup\": {},",
            json_speedup(e.reach_naive, e.reach_interned)
        );
        let _ = writeln!(
            json,
            "      \"conc_naive_ms\": {},",
            json_ms(Some(e.conc_naive))
        );
        let _ = writeln!(
            json,
            "      \"conc_batched_ms\": {},",
            json_ms(Some(e.conc_batched))
        );
        let _ = writeln!(
            json,
            "      \"conc_speedup\": {},",
            json_speedup(Some(e.conc_naive), Some(e.conc_batched))
        );
        let _ = writeln!(json, "      \"synth_ms\": {}", json_ms(e.synth));
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < entries.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    if let Err(e) = std::fs::write(&cfg.out, &json) {
        eprintln!("bench: cannot write {}: {e}", cfg.out);
        std::process::exit(1);
    }
    // Headline number: geometric-mean reachability speedup on the large set.
    let large: Vec<f64> = entries
        .iter()
        .filter(|e| e.set == "large")
        .filter_map(|e| match (e.reach_naive, e.reach_interned) {
            (Some(n), Some(f)) if !f.is_zero() => Some(n.as_secs_f64() / f.as_secs_f64()),
            _ => None,
        })
        .collect();
    if !large.is_empty() {
        let geo = (large.iter().map(|s| s.ln()).sum::<f64>() / large.len() as f64).exp();
        eprintln!("large-set reachability speedup (geomean): {geo:.2}x");
    }
    eprintln!("wrote {}", cfg.out);
}
