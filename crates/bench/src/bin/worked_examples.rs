//! Tables I–IV: the worked structural artifacts of the running example —
//! regions, concurrency, cover cubes and refined approximations (compact
//! form; `cargo run --example region_explorer` prints the narrated view).

use si_core::StructuralContext;
use si_petri::ReachabilityGraph;
use si_stg::{SignalRegions, StateEncoding};

fn main() {
    let stg = si_stg::benchmarks::running_example();
    let net = stg.net();
    let ctx = StructuralContext::build(&stg).expect("context");
    let rg = ReachabilityGraph::build(net, 100_000).expect("safe");
    let _enc = StateEncoding::compute(&stg, &rg).expect("consistent");

    println!("== Table I: regions of every output transition (ground truth) ==");
    for sig in stg.signals() {
        if !stg.signal_kind(sig).is_synthesized() {
            continue;
        }
        let regions = SignalRegions::compute(&stg, &rg, sig);
        for (i, &t) in regions.transitions.iter().enumerate() {
            println!(
                "  {:<6} |ER| = {:<2} |QR| = {:<2} |QR*| = {:<2} |BR| = {}",
                stg.transition_display(t),
                regions.er[i].count_ones(),
                regions.qr[i].count_ones(),
                regions.qr_restricted[i].count_ones(),
                regions.br[i].count_ones()
            );
        }
    }

    println!("\n== Table II: place × signal structural concurrency ==");
    for p in net.places() {
        let row: Vec<&str> = stg
            .signals()
            .filter(|&s| ctx.analysis.scr.place(p, s))
            .map(|s| stg.signal_name(s))
            .collect();
        println!("  {:<14} || {{{}}}", net.place_name(p), row.join(","));
    }

    println!("\n== Table III: cover cubes (signal order a b c d) ==");
    for p in net.places() {
        println!("  {:<14} {}", net.place_name(p), ctx.cubes.cube(p));
    }

    println!("\n== Table IV: refined signal-region approximations of d ==");
    let d = stg.signal_by_name("d").expect("d");
    let sc = ctx.signal_covers(d);
    let mut ts: Vec<_> = sc.er.keys().copied().collect();
    ts.sort();
    for t in ts {
        println!(
            "  C({:<5}) = {:<12} QRcover = {}",
            stg.transition_display(t),
            sc.er[&t].to_string(),
            sc.qr[&t]
        );
    }
    println!(
        "\nconflicts: {} | verdict: {:?} | place-cover cubes: {}",
        ctx.conflicts().len(),
        ctx.csc_verdict(),
        ctx.total_cubes()
    );
}
