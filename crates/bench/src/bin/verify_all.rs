//! The §IX footnote, reproduced: "all synthesis results have been formally
//! verified to be speed independent". Runs every benchmark through every
//! architecture, then through the three independent verifiers — over one
//! [`Engine`] session per benchmark, so the reachability graph behind the
//! six verifier calls is built once per STG, not once per (arch, verifier).

use si_core::{Architecture, Engine, MinimizeStages, SynthesisOptions};
use si_verify::{random_walks, EngineVerify};

fn main() {
    let header = format!(
        "{:<16} {:<10} | {:>6} | {:>10} {:>11} {:>9}",
        "benchmark", "arch", "area", "functional", "conformance", "sim-walk"
    );
    println!("{header}");
    si_bench::rule(&header);
    let mut failures = 0usize;
    for stg in si_bench::small_set() {
        // The historical functional-verification cap (verify_circuit's
        // 4M); conformance products on the small set are far below it, so
        // one cap serves both oracles without narrowing either.
        let engine = Engine::new(&stg).cap(4_000_000);
        for (label, arch) in [
            ("complex", Architecture::ComplexGate),
            ("excitation", Architecture::ExcitationFunction),
            ("per-region", Architecture::PerRegion),
        ] {
            let syn = match engine.synthesize_with(&SynthesisOptions {
                architecture: arch,
                stages: MinimizeStages::full(),
                ..Default::default()
            }) {
                Ok(s) => s,
                Err(e) => {
                    println!("{:<16} {:<10} | synthesis failed: {e}", stg.name(), label);
                    failures += 1;
                    continue;
                }
            };
            // A cap overflow is "never checked", not "checked and failed"
            // — report it distinctly instead of conflating it with a
            // genuine verification failure.
            let functional = match engine.verify(&syn.circuit) {
                Ok(r) => r.is_ok(),
                Err(e) => {
                    println!(
                        "{:<16} {:<10} | verification inconclusive: {e}",
                        stg.name(),
                        label
                    );
                    failures += 1;
                    continue;
                }
            };
            let conform = engine.check_conformance(&syn.circuit).is_ok();
            let sim = random_walks(&stg, &syn.circuit, 4, 2000, 2024).is_clean();
            if !(functional && conform && sim) {
                failures += 1;
            }
            let mark = |ok: bool| if ok { "OK" } else { "FAIL" };
            println!(
                "{:<16} {:<10} | {:>6} | {:>10} {:>11} {:>9}",
                stg.name(),
                label,
                syn.literal_area,
                mark(functional),
                mark(conform),
                mark(sim)
            );
        }
    }
    println!("\n{} failure(s).", failures);
    std::process::exit(if failures == 0 { 0 } else { 1 });
}
