//! The §IX footnote, reproduced: "all synthesis results have been formally
//! verified to be speed independent". Runs every benchmark through every
//! architecture, then through the three independent verifiers.

use si_core::{synthesize, Architecture, MinimizeStages, SynthesisOptions};
use si_verify::{check_conformance, random_walks, verify_circuit};

fn main() {
    let header = format!(
        "{:<16} {:<10} | {:>6} | {:>10} {:>11} {:>9}",
        "benchmark", "arch", "area", "functional", "conformance", "sim-walk"
    );
    println!("{header}");
    si_bench::rule(&header);
    let mut failures = 0usize;
    for stg in si_bench::small_set() {
        for (label, arch) in [
            ("complex", Architecture::ComplexGate),
            ("excitation", Architecture::ExcitationFunction),
            ("per-region", Architecture::PerRegion),
        ] {
            let syn = match synthesize(
                &stg,
                &SynthesisOptions {
                    architecture: arch,
                    stages: MinimizeStages::full(),
                },
            ) {
                Ok(s) => s,
                Err(e) => {
                    println!("{:<16} {:<10} | synthesis failed: {e}", stg.name(), label);
                    failures += 1;
                    continue;
                }
            };
            let functional = verify_circuit(&stg, &syn.circuit).is_ok();
            let conform = check_conformance(&stg, &syn.circuit, 500_000).is_ok();
            let sim = random_walks(&stg, &syn.circuit, 4, 2000, 2024).is_clean();
            if !(functional && conform && sim) {
                failures += 1;
            }
            let mark = |ok: bool| if ok { "OK" } else { "FAIL" };
            println!(
                "{:<16} {:<10} | {:>6} | {:>10} {:>11} {:>9}",
                stg.name(),
                label,
                syn.literal_area,
                mark(functional),
                mark(conform),
                mark(sim)
            );
        }
    }
    println!("\n{} failure(s).", failures);
    std::process::exit(if failures == 0 { 0 } else { 1 });
}
