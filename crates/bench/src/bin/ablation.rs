//! Ablation: how much does each structural ingredient matter?
//!
//! 1. **Refinement policy** — none vs conflict-driven vs liberal (the
//!    paper's "refine all places" remark): effect on cover cubes, on the
//!    minimized area and on context-build time.
//! 2. **Minimization stages** — the per-stage area deltas, aggregated.

use si_core::{
    synthesize_with_context, Architecture, MinimizeStages, StructuralContext, SynthesisOptions,
};
use std::time::Instant;

fn main() {
    println!("== ablation 1: refinement policy ==");
    let header = format!(
        "{:<14} | {:>9} {:>9} | {:>9} {:>9} | {:>10} {:>10}",
        "benchmark", "cubes(c)", "cubes(l)", "area(c)", "area(l)", "time(c)", "time(l)"
    );
    println!("{header}");
    si_bench::rule(&header);
    let opts = SynthesisOptions {
        architecture: Architecture::PerRegion,
        stages: MinimizeStages::full(),
        ..Default::default()
    };
    for stg in si_bench::small_set() {
        // Conflict-driven only: rebuild the context, then undo the liberal
        // round by rebuilding place covers from the raw cubes when no
        // conflicts exist.
        let t0 = Instant::now();
        let mut conservative = StructuralContext::build(&stg).expect("ctx");
        if conservative.conflicts().is_empty() {
            let nsig = stg.signal_count();
            conservative.place_cover = conservative
                .cubes
                .cubes
                .iter()
                .map(|c| si_boolean::Cover::from_cubes(nsig, [c.clone()]))
                .collect();
        }
        let t_cons = t0.elapsed();
        let area_cons = synthesize_with_context(&conservative, &opts)
            .map(|s| s.literal_area)
            .unwrap_or(0);

        let t1 = Instant::now();
        let liberal = StructuralContext::build(&stg).expect("ctx");
        let t_lib = t1.elapsed();
        let area_lib = synthesize_with_context(&liberal, &opts)
            .map(|s| s.literal_area)
            .unwrap_or(0);

        println!(
            "{:<14} | {:>9} {:>9} | {:>9} {:>9} | {:>10} {:>10}",
            stg.name(),
            conservative.total_cubes(),
            liberal.total_cubes(),
            area_cons,
            area_lib,
            si_bench::fmt_duration(t_cons),
            si_bench::fmt_duration(t_lib),
        );
    }

    println!("\n== ablation 2: minimization stage deltas (PerRegion, suite totals) ==");
    for stage in 0..=4 {
        let mut total = 0usize;
        for stg in si_bench::small_set() {
            let syn = si_core::synthesize(
                &stg,
                &SynthesisOptions {
                    architecture: Architecture::PerRegion,
                    stages: MinimizeStages::stage(stage),
                    ..Default::default()
                },
            )
            .expect("synthesis");
            total += syn.literal_area;
        }
        println!("  M{stage}: total area = {total}");
    }
}
