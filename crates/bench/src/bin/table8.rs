//! Table VIII: tradeoffs among markings, STG nodes and approximation cubes.
//!
//! Reproduction target: cubes/node stays a small constant (paper: ≈2.4
//! small / ≈2.6 large) while markings/cube grows by orders of magnitude on
//! the large set — the quantitative case for cube approximations.

use si_core::StructuralContext;

fn report(title: &str, set: Vec<si_stg::Stg>) {
    let header = format!(
        "{:<16} {:>7} {:>9} {:>7} | {:>10} {:>14}",
        "benchmark", "nodes", "|M|", "cubes", "cubes/node", "markings/cube"
    );
    println!("\n== {title} ==");
    println!("{header}");
    si_bench::rule(&header);
    let (mut tot_nodes, mut tot_cubes, mut tot_log_mpc, mut count) = (0usize, 0usize, 0.0f64, 0);
    for stg in set {
        let ctx = StructuralContext::build(&stg).expect("context");
        let nodes = stg.net().place_count() + stg.net().transition_count();
        let cubes = ctx.total_cubes();
        let markings_str = si_bench::marking_count(&stg, 500_000);
        let markings: f64 = if let Some(exp) = markings_str.strip_prefix("2^") {
            2f64.powi(exp.parse::<i32>().unwrap())
        } else {
            markings_str.parse::<f64>().unwrap_or(f64::NAN)
        };
        let mpc = markings / cubes as f64;
        println!(
            "{:<16} {:>7} {:>9} {:>7} | {:>10.2} {:>14.3e}",
            stg.name(),
            nodes,
            markings_str,
            cubes,
            cubes as f64 / nodes as f64,
            mpc,
        );
        tot_nodes += nodes;
        tot_cubes += cubes;
        if mpc.is_finite() {
            tot_log_mpc += mpc.log10();
            count += 1;
        }
    }
    si_bench::rule(&header);
    println!(
        "{:<16} {:>7} {:>9} {:>7} | {:>10.2} {:>14}",
        "AVG",
        "",
        "",
        "",
        tot_cubes as f64 / tot_nodes as f64,
        format!("10^{:.1}", tot_log_mpc / count as f64),
    );
}

fn main() {
    report(
        "small benchmarks (paper: cubes/node ~ 2.4, markings/cube ~ 1.7)",
        si_bench::small_set(),
    );
    let mut large = si_bench::large_set();
    large.push(si_stg::generators::clatch(40));
    large.push(si_stg::generators::clatch(90));
    report(
        "large benchmarks (paper: cubes/node ~ 2.6, markings/cube ~ 4e10)",
        large,
    );
}
