//! Table VII: CPU times for the scalable, non-free-choice (but
//! SM-coverable) benchmarks — dining philosophers and the Muller pipeline.
//!
//! Reproduction target: the structural flow synthesizes instances whose
//! state spaces reach and exceed the paper's 10^27 headline while the
//! state-based flow cannot get past tiny sizes.

use si_bench::{fmt_duration, time};
use si_core::{synthesize, SynthesisOptions};

fn main() {
    let header = format!(
        "{:<16} {:>7} {:>7} {:>12} | {:>12} {:>8}",
        "benchmark", "|P|", "|T|", "|M| (est.)", "structural", "area"
    );
    println!("{header}");
    si_bench::rule(&header);

    let mut cases: Vec<(si_stg::Stg, String)> = Vec::new();
    for n in [4usize, 8, 12, 16] {
        let stg = si_stg::generators::philosophers(n);
        // Each philosopher contributes 4 local states gated by forks; the
        // state space grows exponentially in n (measured for small n).
        let m = si_bench::marking_count(&stg, 500_000);
        cases.push((stg, m));
    }
    for n in [16usize, 32] {
        let stg = si_stg::generators::muller_pipeline(n);
        let m = si_bench::marking_count(&stg, 500_000);
        cases.push((stg, m));
    }
    for n in [64usize, 90, 120] {
        let stg = si_stg::generators::clatch(n);
        cases.push((stg, format!("2^{}", n + 1)));
    }

    for (stg, markings) in cases {
        let (syn, t) = time(|| synthesize(&stg, &SynthesisOptions::default()));
        let syn = syn.expect("structural");
        println!(
            "{:<16} {:>7} {:>7} {:>12} | {:>12} {:>8}",
            stg.name(),
            stg.net().place_count(),
            stg.net().transition_count(),
            markings,
            fmt_duration(t),
            syn.literal_area,
        );
    }
    println!("\nclatch_120: 2^121 = 2.7e36 markings, far beyond the paper's 10^27.");
}
