//! Table V: area comparison — state-based baselines (SYN / FORCAGE
//! stand-ins) vs the structural flow (S3C), semi-optimized and fully
//! minimized, plus the mapped area.
//!
//! The paper reports S3C within 15–23 % better totals than the baselines;
//! the reproduction target is the ordering and the improvement band, not
//! the absolute numbers (the area model is normalized literal units).

use si_bench::{marking_count, small_set};
use si_core::{
    map_circuit, synthesize, synthesize_state_based, Architecture, BaselineFlavor, MinimizeStages,
    SynthesisOptions,
};

fn main() {
    let header = format!(
        "{:<12} {:>4} {:>4} {:>7} | {:>8} {:>8} | {:>9} {:>9} {:>7}",
        "benchmark", "|P|", "|T|", "|M|", "SYN", "FCG", "S3C-semi", "S3C-full", "mapped"
    );
    println!("{header}");
    si_bench::rule(&header);

    let (mut tot_syn, mut tot_fcg, mut tot_semi, mut tot_full) = (0usize, 0usize, 0usize, 0usize);
    for stg in small_set() {
        let syn_like = synthesize_state_based(&stg, BaselineFlavor::ExcitationExact, 1_000_000)
            .expect("baseline");
        let fcg_like = synthesize_state_based(&stg, BaselineFlavor::ComplexGateExact, 1_000_000)
            .expect("baseline");
        let semi = synthesize(
            &stg,
            &SynthesisOptions {
                architecture: Architecture::ExcitationFunction,
                stages: MinimizeStages::stage(2), // no backward expansion / collapse
                ..Default::default()
            },
        )
        .expect("structural");
        let full = synthesize(
            &stg,
            &SynthesisOptions {
                architecture: Architecture::PerRegion,
                stages: MinimizeStages::full(),
                ..Default::default()
            },
        )
        .expect("structural");
        let mapped = map_circuit(&full.circuit);
        println!(
            "{:<12} {:>4} {:>4} {:>7} | {:>8} {:>8} | {:>9} {:>9} {:>7}",
            stg.name(),
            stg.net().place_count(),
            stg.net().transition_count(),
            marking_count(&stg, 1_000_000),
            syn_like.literal_area,
            fcg_like.literal_area,
            semi.literal_area,
            full.literal_area,
            mapped.area,
        );
        tot_syn += syn_like.literal_area;
        tot_fcg += fcg_like.literal_area;
        tot_semi += semi.literal_area;
        tot_full += full.literal_area;
    }
    si_bench::rule(&header);
    println!(
        "{:<12} {:>4} {:>4} {:>7} | {:>8} {:>8} | {:>9} {:>9}",
        "TOTAL", "", "", "", tot_syn, tot_fcg, tot_semi, tot_full
    );
    let imp_semi = 100.0 * (tot_syn as f64 - tot_semi as f64) / tot_syn as f64;
    let imp_full = 100.0 * (tot_syn as f64 - tot_full as f64) / tot_syn as f64;
    println!("\nimprovement of S3C over the SYN-like baseline:");
    println!("  semi-optimized: {imp_semi:.1} %   (paper: ~15 %)");
    println!("  fully minimized: {imp_full:.1} %  (paper: ~23 %)");
}
