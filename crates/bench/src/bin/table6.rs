//! Table VI: CPU time, structural vs state-based (SIS / ASSASSIN
//! stand-ins), on STGs with large reachability graphs.
//!
//! Reproduction target: the structural time stays roughly flat in |RG|
//! while the state-based flows blow up and eventually exceed the state cap
//! ("mem-out"), with the crossover at small sizes.

use si_bench::{fmt_duration, time};
use si_core::{synthesize, synthesize_state_based, BaselineFlavor, SynthesisOptions};

fn main() {
    let header = format!(
        "{:<14} {:>6} {:>10} | {:>12} {:>12} {:>12}",
        "benchmark", "|P|+|T|", "|M|", "structural", "SIS-like", "ASSASSIN-like"
    );
    println!("{header}");
    si_bench::rule(&header);

    let cases: Vec<si_stg::Stg> = vec![
        si_stg::generators::clatch(6),
        si_stg::generators::clatch(10),
        si_stg::generators::clatch(13),
        si_stg::generators::clatch(18),
        si_stg::generators::burst(6),
        si_stg::generators::muller_pipeline(10),
        si_stg::generators::muller_pipeline(16),
    ];
    // The state-based flows get a 100k-marking budget: past it the
    // explicit flow is reported as "mem-out", which is how the paper's
    // Table VI reports SIS/ASSASSIN on the large entries.
    const CAP: usize = 100_000;
    for stg in cases {
        let (structural, t_structural) = time(|| synthesize(&stg, &SynthesisOptions::default()));
        structural.expect("structural flow");
        let (sis, t_sis) =
            time(|| synthesize_state_based(&stg, BaselineFlavor::ComplexGateExact, CAP));
        let (assassin, t_assassin) =
            time(|| synthesize_state_based(&stg, BaselineFlavor::ExcitationExact, CAP));
        let fmt = |r: &Result<si_core::BaselineSynthesis, si_core::BaselineError>,
                   t: std::time::Duration| match r {
            Ok(_) => fmt_duration(t),
            Err(si_core::BaselineError::StateExplosion(_)) => "mem-out".to_string(),
            Err(e) => format!("{e}"),
        };
        println!(
            "{:<14} {:>6} {:>10} | {:>12} {:>12} {:>12}",
            stg.name(),
            stg.net().place_count() + stg.net().transition_count(),
            si_bench::marking_count(&stg, CAP),
            fmt_duration(t_structural),
            fmt(&sis, t_sis),
            fmt(&assassin, t_assassin),
        );
    }
}
