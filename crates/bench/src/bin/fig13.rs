//! Fig. 13: average area through the minimization stages M0–M4 and after
//! technology mapping, for the two benchmark sets.
//!
//! Reproduction target: a monotonically decreasing series per set, with
//! mapping providing a further drop — the paper's staircase.

use si_core::{map_circuit, synthesize, Architecture, MinimizeStages, SynthesisOptions};

fn series(set: &[si_stg::Stg]) -> (Vec<f64>, f64) {
    let mut avgs = Vec::new();
    for stage in 0..=4 {
        let mut total = 0usize;
        for stg in set {
            let syn = synthesize(
                stg,
                &SynthesisOptions {
                    architecture: Architecture::PerRegion,
                    stages: MinimizeStages::stage(stage),
                    ..Default::default()
                },
            )
            .expect("structural");
            total += syn.literal_area;
        }
        avgs.push(total as f64 / set.len() as f64);
    }
    let mut mapped_total = 0usize;
    for stg in set {
        let syn = synthesize(
            stg,
            &SynthesisOptions {
                architecture: Architecture::PerRegion,
                stages: MinimizeStages::full(),
                ..Default::default()
            },
        )
        .expect("structural");
        mapped_total += map_circuit(&syn.circuit).area;
    }
    (avgs, mapped_total as f64 / set.len() as f64)
}

fn print_series(title: &str, avgs: &[f64], mapped: f64) {
    println!("\n== {title} ==");
    let header = format!(
        "{:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "M0", "M1", "M2", "M3", "M4", "map"
    );
    println!("{header}");
    for v in avgs {
        print!("{v:>8.1} ");
    }
    println!("{mapped:>7.1}");
    // simple bar rendering
    let max = avgs[0].max(1.0);
    for (i, v) in avgs.iter().chain(std::iter::once(&mapped)).enumerate() {
        let label = if i < 5 { format!("M{i}") } else { "map".into() };
        let bars = ((v / max) * 40.0).round() as usize;
        println!("  {label:<4} {:>6.1} |{}", v, "#".repeat(bars));
    }
}

fn main() {
    let small = si_bench::small_set();
    let (avgs, mapped) = series(&small);
    print_series("benchmark set 1 (small controllers)", &avgs, mapped);

    let large = si_bench::large_set();
    let (avgs, mapped) = series(&large);
    print_series("benchmark set 2 (scalable families)", &avgs, mapped);
}
