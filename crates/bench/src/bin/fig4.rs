//! Fig. 4: the three speed-independent implementations of signal `d` of the
//! running example — complex gate per signal, per excitation function, and
//! per excitation region (with the d+/1, d+/2 cluster treatment).

use si_core::{
    synthesize_signal, Architecture, ImplKind, MinimizeStages, StructuralContext, SynthesisOptions,
};

fn main() {
    let stg = si_stg::benchmarks::running_example();
    let ctx = StructuralContext::build(&stg).expect("context");
    let d = stg.signal_by_name("d").expect("signal d");
    println!(
        "signal order: {}",
        stg.signals()
            .map(|s| stg.signal_name(s).to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );

    for (label, arch) in [
        (
            "(a) atomic complex gate per signal",
            Architecture::ComplexGate,
        ),
        (
            "(b) complex gate per excitation function + C latch",
            Architecture::ExcitationFunction,
        ),
        (
            "(c) complex gate per excitation region (one-hot clusters)",
            Architecture::PerRegion,
        ),
    ] {
        let r = synthesize_signal(
            &ctx,
            d,
            &SynthesisOptions {
                architecture: arch,
                stages: MinimizeStages::stage(1),
                ..Default::default()
            },
        )
        .expect("synthesis");
        println!("\n{label}:");
        match &r.implementation.kind {
            ImplKind::Combinational { cover, inverted } => {
                println!("  d = {}{}", if *inverted { "NOT " } else { "" }, cover);
            }
            _ => {
                for (own, cover) in &r.set_clusters {
                    let names: Vec<String> =
                        own.iter().map(|&t| stg.transition_display(t)).collect();
                    println!("  set cluster {{{}}}: {}", names.join(","), cover);
                }
                for (own, cover) in &r.reset_clusters {
                    let names: Vec<String> =
                        own.iter().map(|&t| stg.transition_display(t)).collect();
                    println!("  reset cluster {{{}}}: {}", names.join(","), cover);
                }
            }
        }
        println!("  area = {} literal units", r.implementation.literal_area());
    }
}
