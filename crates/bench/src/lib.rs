//! Shared infrastructure of the experiment harness: the benchmark sets of
//! §IX, timing helpers and table formatting.

use si_stg::{benchmarks, generators, Stg};
use std::time::{Duration, Instant};

/// The "small" benchmark set (Fig. 13 left, Table VIII top): the fixed
/// controllers, all with < 10⁴ markings.
pub fn small_set() -> Vec<Stg> {
    vec![
        benchmarks::running_example(),
        benchmarks::fig5_example(),
        benchmarks::vme_read_csc(),
        benchmarks::half_handshake(),
        benchmarks::converter(),
        benchmarks::burst2(),
        benchmarks::select2(),
        benchmarks::rw_control(),
        benchmarks::master_read(),
        benchmarks::mixer2(),
        generators::sequencer(3),
        generators::selector(3),
    ]
}

/// The "large" benchmark set (Fig. 13 right, Table VIII bottom): generated
/// families whose reachability graphs are large while the STGs stay small.
pub fn large_set() -> Vec<Stg> {
    vec![
        generators::clatch(8),
        generators::clatch(12),
        generators::burst(6),
        generators::burst(8),
        generators::muller_pipeline(8),
        generators::muller_pipeline(12),
        generators::philosophers(5),
        generators::philosophers(7),
        generators::sequencer(10),
        generators::selector(8),
    ]
}

/// Times a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed())
}

/// Number of reachable markings, as an exact count up to `cap` or an
/// analytic value for the generator families.
pub fn marking_count(stg: &Stg, cap: usize) -> String {
    match si_petri::ReachabilityGraph::build(stg.net(), cap) {
        Ok(rg) => rg.state_count().to_string(),
        Err(_) => {
            // Analytic counts for the generator families.
            let name = stg.name();
            if let Some(n) = name
                .strip_prefix("clatch_")
                .and_then(|s| s.parse::<u32>().ok())
            {
                return format!("2^{}", n + 1);
            }
            format!("> {cap}")
        }
    }
}

/// Formats a duration in engineering style.
pub fn fmt_duration(d: Duration) -> String {
    if d.as_secs() >= 1 {
        format!("{:.2} s", d.as_secs_f64())
    } else if d.as_millis() >= 1 {
        format!("{:.2} ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.1} us", d.as_secs_f64() * 1e6)
    }
}

/// Prints a separator line sized to the given header.
pub fn rule(header: &str) {
    println!("{}", "-".repeat(header.len()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sets_are_nonempty_and_distinct() {
        let s = small_set();
        let l = large_set();
        assert!(s.len() >= 10);
        assert!(l.len() >= 8);
    }

    #[test]
    fn analytic_marking_count_for_clatch() {
        let stg = generators::clatch(20);
        assert_eq!(marking_count(&stg, 1000), "2^21");
        let small = generators::clatch(3);
        assert_eq!(marking_count(&small, 1000), "16");
    }

    #[test]
    fn duration_formatting() {
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("us"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
