//! Micro-benchmarks of the substrates: cube algebra, concurrency relation,
//! reachability, SM-cover — the building blocks whose complexity the paper
//! reasons about.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use si_boolean::{Cover, Cube};
use si_petri::{sm_cover, ConcurrencyRelation, ReachabilityGraph};

fn bench_cube_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("cube_ops");
    let a: Cube = "10-1-01-10-1-01-".parse().unwrap();
    let b: Cube = "1--1-0--10---01-".parse().unwrap();
    g.bench_function("and", |bench| {
        bench.iter(|| std::hint::black_box(&a).and(&b))
    });
    g.bench_function("sharp", |bench| {
        bench.iter(|| std::hint::black_box(&a).sharp(&b))
    });
    let cover = Cover::from_cubes(
        16,
        (0..12).map(|i| {
            let mut c = Cube::full(16);
            c.set(i, Some(i % 2 == 0));
            c.set((i + 3) % 16, Some(true));
            c
        }),
    );
    g.bench_function("tautology", |bench| {
        bench.iter(|| std::hint::black_box(&cover).is_tautology())
    });
    g.bench_function("complement", |bench| {
        bench.iter(|| std::hint::black_box(&cover).complement())
    });
    g.finish();
}

fn bench_concurrency(c: &mut Criterion) {
    let mut g = c.benchmark_group("concurrency_relation");
    for n in [8usize, 16, 32] {
        let stg = si_stg::generators::clatch(n);
        g.bench_with_input(BenchmarkId::new("clatch", n), &stg, |bench, stg| {
            bench.iter(|| ConcurrencyRelation::compute(stg.net()))
        });
    }
    g.finish();
}

fn bench_reachability(c: &mut Criterion) {
    let mut g = c.benchmark_group("reachability");
    g.sample_size(10);
    for n in [8usize, 12, 16] {
        let stg = si_stg::generators::clatch(n);
        g.bench_with_input(BenchmarkId::new("clatch", n), &stg, |bench, stg| {
            bench.iter(|| ReachabilityGraph::build(stg.net(), 10_000_000).unwrap())
        });
    }
    g.finish();
}

fn bench_sm_cover(c: &mut Criterion) {
    let mut g = c.benchmark_group("sm_cover");
    for n in [4usize, 8] {
        let stg = si_stg::generators::philosophers(n);
        g.bench_with_input(BenchmarkId::new("philosophers", n), &stg, |bench, stg| {
            bench.iter(|| sm_cover(stg.net()).unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_cube_ops,
    bench_concurrency,
    bench_reachability,
    bench_sm_cover
);
criterion_main!(benches);
