//! Table VII as a benchmark: structural synthesis time on the scalable
//! non-free-choice (philosophers) and marked-graph (Muller pipeline)
//! families.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use si_core::{synthesize, SynthesisOptions};

fn bench_scalable(c: &mut Criterion) {
    let mut g = c.benchmark_group("table7_scalable");
    g.sample_size(10);
    for n in [4usize, 8] {
        let stg = si_stg::generators::philosophers(n);
        g.bench_with_input(BenchmarkId::new("philosophers", n), &stg, |bench, stg| {
            bench.iter(|| synthesize(stg, &SynthesisOptions::default()).unwrap())
        });
    }
    for n in [8usize, 16, 32] {
        let stg = si_stg::generators::muller_pipeline(n);
        g.bench_with_input(BenchmarkId::new("muller", n), &stg, |bench, stg| {
            bench.iter(|| synthesize(stg, &SynthesisOptions::default()).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scalable);
criterion_main!(benches);
