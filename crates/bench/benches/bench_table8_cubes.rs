//! Table VIII as a benchmark: the cost of building the cube approximations
//! (cover cubes + refinement + QPS) — the quantity the paper trades against
//! state enumeration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use si_core::StructuralContext;
use si_stg::StgAnalysis;

fn bench_cube_approx(c: &mut Criterion) {
    let mut g = c.benchmark_group("table8_cube_approx");
    g.sample_size(10);
    for stg in si_bench::small_set().into_iter().take(4) {
        let name = stg.name().to_string();
        g.bench_with_input(BenchmarkId::new("context", &name), &stg, |bench, stg| {
            bench.iter(|| StructuralContext::build(stg).unwrap())
        });
    }
    for n in [8usize, 16] {
        let stg = si_stg::generators::clatch(n);
        g.bench_with_input(
            BenchmarkId::new("consistency_clatch", n),
            &stg,
            |bench, stg| bench.iter(|| StgAnalysis::analyze(stg).unwrap()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_cube_approx);
criterion_main!(benches);
