//! Table V as a benchmark: full structural synthesis vs the state-based
//! baseline on the fixed benchmark set (throughput of the complete flows).

use criterion::{criterion_group, criterion_main, Criterion};
use si_core::{synthesize, synthesize_state_based, BaselineFlavor, SynthesisOptions};

fn bench_flows(c: &mut Criterion) {
    let mut g = c.benchmark_group("table5_flows");
    g.sample_size(20);
    let suite = si_bench::small_set();
    g.bench_function("structural_full_suite", |bench| {
        bench.iter(|| {
            for stg in &suite {
                std::hint::black_box(synthesize(stg, &SynthesisOptions::default()).unwrap());
            }
        })
    });
    g.bench_function("baseline_full_suite", |bench| {
        bench.iter(|| {
            for stg in &suite {
                std::hint::black_box(
                    synthesize_state_based(stg, BaselineFlavor::ExcitationExact, 1_000_000)
                        .unwrap(),
                );
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_flows);
criterion_main!(benches);
