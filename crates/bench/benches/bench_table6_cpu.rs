//! Table VI as a benchmark: the structural-vs-state-based crossover on the
//! generalized C-latch family (|RG| = 2^(n+1)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use si_core::{synthesize, synthesize_state_based, BaselineFlavor, SynthesisOptions};

fn bench_crossover(c: &mut Criterion) {
    let mut g = c.benchmark_group("table6_crossover");
    g.sample_size(10);
    for n in [6usize, 10, 14] {
        let stg = si_stg::generators::clatch(n);
        g.bench_with_input(BenchmarkId::new("structural", n), &stg, |bench, stg| {
            bench.iter(|| synthesize(stg, &SynthesisOptions::default()).unwrap())
        });
        // The explicit flow only gets the sizes it can finish in reasonable
        // time (the crossover is visible well before n = 14).
        if n <= 10 {
            g.bench_with_input(BenchmarkId::new("state_based", n), &stg, |bench, stg| {
                bench.iter(|| {
                    synthesize_state_based(stg, BaselineFlavor::ComplexGateExact, 10_000_000)
                        .unwrap()
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_crossover);
criterion_main!(benches);
