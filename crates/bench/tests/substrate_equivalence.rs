//! Whole-benchmark-suite equivalence of the word-parallel substrate: the
//! interned reachability engine and the batched concurrency fixpoint must
//! reproduce the naive implementations bit for bit on every net in the
//! small benchmark set (and the cheap members of the large one).

use si_petri::{ConcurrencyRelation, ReachabilityGraph};

const CAP: usize = 500_000;

fn assert_rg_equal(name: &str, net: &si_petri::PetriNet) {
    let fast = ReachabilityGraph::build(net, CAP).unwrap();
    let naive = ReachabilityGraph::build_naive(net, CAP).unwrap();
    assert_eq!(
        fast.state_count(),
        naive.state_count(),
        "{name}: state count"
    );
    assert_eq!(fast.edge_count(), naive.edge_count(), "{name}: edge count");
    for s in fast.states() {
        assert_eq!(fast.marking(s), naive.marking(s), "{name}: marking {s:?}");
        assert_eq!(
            fast.successors(s),
            naive.successors(s),
            "{name}: succs {s:?}"
        );
        assert_eq!(
            fast.predecessors(s),
            naive.predecessors(s),
            "{name}: preds {s:?}"
        );
    }
    for t in net.transitions() {
        assert_eq!(
            fast.states_enabling(t),
            naive.states_enabling(t),
            "{name}: ER of {t}"
        );
    }
    assert_eq!(fast.is_live(net), naive.is_live(net), "{name}: liveness");
}

fn assert_cr_equal(name: &str, net: &si_petri::PetriNet) {
    let fast = ConcurrencyRelation::compute(net);
    let naive = ConcurrencyRelation::compute_naive(net);
    assert_eq!(fast.pair_count(), naive.pair_count(), "{name}: pair count");
    for p in net.places() {
        for q in net.places() {
            assert_eq!(fast.places(p, q), naive.places(p, q), "{name}: {p} {q}");
        }
        for t in net.transitions() {
            assert_eq!(
                fast.place_transition(p, t),
                naive.place_transition(p, t),
                "{name}: {p} {t}"
            );
        }
    }
    for a in net.transitions() {
        for b in net.transitions() {
            assert_eq!(
                fast.transitions(a, b),
                naive.transitions(a, b),
                "{name}: {a} {b}"
            );
        }
    }
}

#[test]
fn small_set_reachability_equivalent() {
    for stg in si_bench::small_set() {
        assert_rg_equal(stg.name(), stg.net());
    }
}

#[test]
fn small_set_concurrency_equivalent() {
    for stg in si_bench::small_set() {
        assert_cr_equal(stg.name(), stg.net());
    }
}

#[test]
fn large_set_spot_checks_equivalent() {
    // The cheap members of the large set: full equivalence without making
    // `cargo test` minutes long (the naive engine is the slow side).
    for stg in [
        si_stg::generators::clatch(8),
        si_stg::generators::muller_pipeline(8),
        si_stg::generators::philosophers(5),
        si_stg::generators::sequencer(10),
    ] {
        assert_rg_equal(stg.name(), stg.net());
        assert_cr_equal(stg.name(), stg.net());
    }
}
