//! Sharded conformance-product equivalence on the large benchmark set:
//! exploring the spec×circuit product with 2/4/8 explorer shards must
//! return the **same verdict** as the sequential explorer, and every
//! failing report must carry a **valid witness** — a firing sequence that
//! replays, under the product semantics (fire the STG transition, toggle
//! the signal's wire), from the initial product state without ever
//! stepping through a disabled transition.
//!
//! Each member is exercised both with its (conformant) synthesized
//! circuit and with a sabotaged one whose first implementation is stuck
//! excited, so both verdict polarities cross the sharded path.

use proptest::prelude::*;
use si_bench::large_set;
use si_core::{synthesize, Circuit, SynthesisOptions};
use si_petri::ReachOptions;
use si_stg::Stg;
use si_verify::{check_conformance_with, ConformanceReport};
use std::sync::OnceLock;

struct Member {
    stg: Stg,
    good: Circuit,
    bad: Circuit,
}

/// The large set with one synthesized and one sabotaged circuit each,
/// computed once per process (synthesis dominates the test's cost).
fn members() -> &'static [Member] {
    static MEMBERS: OnceLock<Vec<Member>> = OnceLock::new();
    MEMBERS.get_or_init(|| {
        large_set()
            .into_iter()
            .filter_map(|stg| {
                let syn = synthesize(&stg, &SynthesisOptions::default()).ok()?;
                let mut bad = syn.circuit.clone();
                bad.implementations[0].kind = si_core::ImplKind::Combinational {
                    cover: si_boolean::Cover::universe(stg.signal_count()),
                    inverted: false,
                };
                Some(Member {
                    stg,
                    good: syn.circuit,
                    bad,
                })
            })
            .collect()
    })
}

/// Replays a conformance counterexample under the product semantics and
/// asserts every step is a live firing.
fn assert_witness_replays(stg: &Stg, report: &ConformanceReport, label: &str) {
    if report.is_ok() {
        assert!(report.trace.is_none(), "{label}: spurious trace");
        return;
    }
    let trace = report
        .trace
        .as_ref()
        .unwrap_or_else(|| panic!("{label}: failing report without a trace"));
    let net = stg.net();
    let mut m = net.initial_marking();
    for &t in trace {
        assert!(net.is_enabled(&m, t), "{label}: dead witness step {t}");
        m = net.fire(&m, t);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sharded_product_matches_sequential(
        idx in 0usize..32,
        shards in prop_oneof![Just(2usize), Just(4usize), Just(8usize)],
        sabotage in prop_oneof![Just(false), Just(true)],
    ) {
        let ms = members();
        let m = &ms[idx % ms.len()];
        let circuit = if sabotage { &m.bad } else { &m.good };
        let cap = 2_000_000;
        let seq = check_conformance_with(&m.stg, circuit, ReachOptions::with_cap(cap)).unwrap();
        let par =
            check_conformance_with(&m.stg, circuit, ReachOptions::with_cap(cap).shards(shards))
                .unwrap();
        prop_assert!(
            seq.is_conclusive() && par.is_conclusive(),
            "{}: the 2M cap must cover the whole product",
            m.stg.name()
        );
        prop_assert_eq!(
            seq.is_ok(),
            par.is_ok(),
            "{} ({} shards, sabotage={}): verdicts diverge",
            m.stg.name(),
            shards,
            sabotage
        );
        // On a conformant circuit both explorers walk the whole product.
        if seq.is_ok() {
            prop_assert_eq!(seq.states_explored, par.states_explored);
        }
        assert_witness_replays(&m.stg, &seq, m.stg.name());
        assert_witness_replays(&m.stg, &par, m.stg.name());
    }
}
