//! The observability overhead contract.
//!
//! The whole stack is instrumented, so the price of that has to be
//! pinned down from the outside:
//!
//! * with the switch **off** (the default), a run records nothing into
//!   the registry — [`si_obs::record_count`] is the tamper-evident seal —
//!   and produces results identical to an instrumented-and-enabled run;
//! * with the switch **on**, the span tree is well-formed: phase times
//!   of the children sum to no more than their parent, and the spans the
//!   exploration layer promises actually appear.
//!
//! The registry and the enable switch are process-global, so every test
//! here serialises on one lock (cargo runs `#[test]`s concurrently).

use std::sync::{Mutex, MutexGuard, OnceLock};

use si_petri::ReachabilityGraph;
use si_stg::Stg;

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A deterministic fingerprint of a reachability graph: counts plus an
/// FNV-1a fold of the full successor relation.
fn fingerprint(rg: &ReachabilityGraph) -> (usize, usize, u64) {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for s in rg.states() {
        mix(s.index() as u64);
        for (t, succ) in rg.successors(s) {
            mix(t.index() as u64);
            mix(succ.index() as u64);
        }
    }
    (rg.state_count(), rg.edge_count(), h)
}

fn explore_all(specs: &[Stg], cap: usize) -> Vec<(usize, usize, u64)> {
    specs
        .iter()
        .map(|stg| fingerprint(&ReachabilityGraph::build(stg.net(), cap).expect("fits the cap")))
        .collect()
}

#[test]
fn disabled_tracing_records_nothing_and_results_match_enabled() {
    let _guard = serial();

    si_obs::set_enabled(false);
    si_obs::reset();
    let specs = si_bench::small_set();
    let records_before = si_obs::record_count();
    let off = explore_all(&specs, 1 << 20);
    assert_eq!(
        si_obs::record_count(),
        records_before,
        "a disabled run must not touch the registry"
    );
    assert!(
        si_obs::span_snapshot().is_empty(),
        "a disabled run must not grow the span tree"
    );

    // The same workload with observation on: identical graphs, and now
    // the registry has seen records.
    si_obs::set_enabled(true);
    let on = explore_all(&specs, 1 << 20);
    let recorded = si_obs::record_count() > records_before;
    si_obs::set_enabled(false);
    si_obs::reset();

    assert_eq!(off, on, "tracing must not perturb exploration results");
    assert!(recorded, "an enabled run must actually record");
}

#[test]
fn enabled_profile_span_tree_is_well_formed() {
    let _guard = serial();

    si_obs::set_enabled(false);
    si_obs::reset();
    si_obs::set_enabled(true);
    for stg in si_bench::large_set() {
        let _ = ReachabilityGraph::build(stg.net(), 1 << 22).expect("fits the cap");
    }
    let spans = si_obs::span_snapshot();
    si_obs::set_enabled(false);

    // Shape: `reach.build` is a root with the sequential explorer below
    // it, called once per spec.
    let build = spans
        .iter()
        .find(|s| s.name == "reach.build")
        .expect("reach.build span present");
    assert_eq!(build.calls, si_bench::large_set().len() as u64);
    assert!(
        build
            .children
            .iter()
            .any(|c| c.name == "explore.sequential"),
        "exploration runs under the build span"
    );

    // Times are a tree: children can never exceed their parent.
    fn check(node: &si_obs::SpanSnapshot) {
        let child_sum: u64 = node.children.iter().map(|c| c.total_ns).sum();
        assert!(
            child_sum <= node.total_ns,
            "span {:?}: children sum {child_sum} ns > total {} ns",
            node.name,
            node.total_ns
        );
        for c in &node.children {
            check(c);
        }
    }
    for root in &spans {
        check(root);
    }
    si_obs::reset();
}

#[test]
fn disabled_switch_leaves_counters_unregistered() {
    let _guard = serial();

    si_obs::set_enabled(false);
    si_obs::reset();
    let before = si_obs::record_count();
    si_obs::counter_inc("overhead.test.counter");
    si_obs::histogram_record("overhead.test.histogram", 7);
    assert_eq!(si_obs::counter_value("overhead.test.counter"), None);
    assert_eq!(si_obs::record_count(), before);

    si_obs::set_enabled(true);
    si_obs::counter_inc("overhead.test.counter");
    assert_eq!(si_obs::counter_value("overhead.test.counter"), Some(1));
    si_obs::set_enabled(false);
    si_obs::reset();
}
