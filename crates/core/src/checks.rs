//! Structural implementability checks (§III, §VIII-B).
//!
//! Every candidate set/reset cover produced by synthesis or minimization is
//! gated by two structural conditions, both evaluated purely on the region
//! approximations of the [`StructuralContext`]:
//!
//! * **correctness** (eq. 2): the cover contains every excitation-region
//!   cover of its own direction and misses the generalized regions of the
//!   opposite direction;
//! * **monotonicity** (Property 16): once the cover turns off inside a
//!   quiescent region it never turns on again before the next excitation —
//!   checked through the `FD` sets of first-disabling transitions over the
//!   interleaved (QPS) subgraph.

use crate::context::{SignalCovers, StructuralContext};
use si_boolean::{Bits, Cover};
use si_petri::{PlaceId, TransId};
use si_stg::interleaved_nodes;

/// Which half of the excitation function a cover implements.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CoverRole {
    /// Set function: rises in GER(a+), may stay through GQR(1).
    Set,
    /// Reset function: rises in GER(a−), may stay through GQR(0).
    Reset,
}

impl CoverRole {
    /// The transitions whose ERs the cover must contain.
    pub fn own_transitions<'c>(&self, sc: &'c SignalCovers) -> &'c [TransId] {
        match self {
            CoverRole::Set => &sc.rising,
            CoverRole::Reset => &sc.falling,
        }
    }

    /// The transitions of the opposite direction.
    pub fn opposite_transitions<'c>(&self, sc: &'c SignalCovers) -> &'c [TransId] {
        match self {
            CoverRole::Set => &sc.falling,
            CoverRole::Reset => &sc.rising,
        }
    }
}

/// Outcome of a structural cover check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckResult {
    /// Both conditions hold.
    Ok,
    /// The cover misses part of an excitation region.
    MissesExcitation(TransId),
    /// The cover intersects the opposite generalized regions.
    IntersectsOffSet,
    /// Property 16 failed: the cover could glitch after `transition`.
    NonMonotonic(TransId),
}

impl CheckResult {
    /// `true` for [`CheckResult::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, CheckResult::Ok)
    }
}

/// The off-set approximation a cover of the given role must avoid:
/// the opposite generalized excitation and quiescent region covers.
pub fn off_set_cover(sc: &SignalCovers, role: CoverRole) -> Cover {
    match role {
        CoverRole::Set => sc.ger_fall.or(&sc.gqr_zero),
        CoverRole::Reset => sc.ger_rise.or(&sc.gqr_one),
    }
}

/// Full structural check: correctness (eq. 2) plus monotonicity
/// (Property 16) of `cover` in the given role.
///
/// `backward_dc` — codes the cover is additionally allowed to intersect
/// (the observability don't-cares of backward expansion, Appendix E);
/// empty for the standard architectures.
pub fn check_cover(
    ctx: &StructuralContext<'_>,
    sc: &SignalCovers,
    role: CoverRole,
    cover: &Cover,
    backward_dc: &Cover,
) -> CheckResult {
    let off = off_set_cover(sc, role);
    check_cluster(ctx, sc, role.own_transitions(sc), cover, &off, backward_dc)
}

/// The cluster-level variant used by the per-excitation-region architecture
/// (Fig. 3(c)): the cover must contain the ERs of exactly the transitions
/// in `own`, avoid the caller-supplied off-set (which encodes the one-hot
/// condition, eq. 3/4), and be monotonic for each owned transition.
pub fn check_cluster(
    ctx: &StructuralContext<'_>,
    sc: &SignalCovers,
    own: &[TransId],
    cover: &Cover,
    off: &Cover,
    backward_dc: &Cover,
) -> CheckResult {
    // Correctness: on-set inclusion.
    for &t in own {
        if !cover.covers(&sc.er[&t]) {
            return CheckResult::MissesExcitation(t);
        }
    }
    // Correctness: off-set exclusion (minus the explicit extra dc).
    let effective_off = if backward_dc.is_empty() {
        off.clone()
    } else {
        off.sharp(backward_dc)
    };
    if cover.intersects(&effective_off) {
        return CheckResult::IntersectsOffSet;
    }
    // Monotonicity per owned transition.
    for &t in own {
        if let Some(u) = monotonicity_violation(ctx, sc, t, cover) {
            return CheckResult::NonMonotonic(u);
        }
    }
    CheckResult::Ok
}

/// Property 16: searches for a first-disabling transition after which the
/// cover intersects a later place cover inside the QPS region of `t`.
/// Returns the offending transition if found.
pub fn monotonicity_violation(
    ctx: &StructuralContext<'_>,
    sc: &SignalCovers,
    t: TransId,
    cover: &Cover,
) -> Option<TransId> {
    let net = ctx.stg.net();
    let nexts = ctx.analysis.next_of(t);

    // Interleaved nodes between t and its successors.
    let mut il_places = Bits::zeros(net.place_count());
    let mut il_trans = Bits::zeros(net.transition_count());
    for &succ in nexts {
        let il = interleaved_nodes(ctx.stg, &ctx.analysis, t, succ);
        il_places.union_with(&il.places);
        il_trans.union_with(&il.transitions);
    }
    il_trans.set(t.index(), false);
    for &succ in nexts {
        il_trans.set(succ.index(), false);
    }

    // Boundary-adjusted cover function of an interleaved place.
    let adjusted = |p: PlaceId| -> Cover {
        let mut f = ctx.place_cover[p.index()].clone();
        for &succ in nexts {
            if net.pre_t(succ).contains(&p) {
                f = f.sharp(&sc.er[&succ]);
            }
        }
        f
    };

    // FD candidates: interleaved transitions with a postset place whose
    // adjusted cover is not fully covered.
    for ui in il_trans.iter_ones() {
        let u = TransId(ui as u32);
        let turnoff = net.post_t(u).iter().any(|&p| {
            if !il_places.get(p.index()) {
                return false;
            }
            let f = adjusted(p);
            !f.is_empty() && !cover.covers(&f)
        });
        if !turnoff {
            continue;
        }
        // All interleaved places reachable from u (its postset onward) must
        // not intersect the cover any more.
        let mut frontier: Vec<PlaceId> = net
            .post_t(u)
            .iter()
            .copied()
            .filter(|p| il_places.get(p.index()))
            .collect();
        let mut seen = Bits::zeros(net.place_count());
        while let Some(p) = frontier.pop() {
            if seen.get(p.index()) {
                continue;
            }
            seen.set(p.index(), true);
            let f = adjusted(p);
            if cover.intersects(&f) {
                return Some(u);
            }
            for &v in net.post_p(p) {
                if il_trans.get(v.index()) {
                    for &q in net.post_t(v) {
                        if il_places.get(q.index()) && !seen.get(q.index()) {
                            frontier.push(q);
                        }
                    }
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_stg::benchmarks;

    /// Builds the context and signal covers of the toggle's output.
    fn toggle_setup() -> (si_stg::Stg, Cover, Cover) {
        let stg = si_stg::parse_g(
            "\
.model toggle
.inputs x
.outputs y
.graph
x+ y+
y+ x-
x- y-
y- x+
.marking { <y-,x+> }
.end
",
        )
        .unwrap();
        let ctx = StructuralContext::build(&stg).unwrap();
        let y = stg.signal_by_name("y").unwrap();
        let sc = ctx.signal_covers(y);
        let set_init = sc.er[&sc.rising[0]].clone();
        let reset_init = sc.er[&sc.falling[0]].clone();
        (stg.clone(), set_init, reset_init)
    }

    #[test]
    fn initial_er_covers_pass_checks() {
        let (stg, set_init, reset_init) = toggle_setup();
        let ctx = StructuralContext::build(&stg).unwrap();
        let y = stg.signal_by_name("y").unwrap();
        let sc = ctx.signal_covers(y);
        let none = Cover::empty(stg.signal_count());
        assert!(check_cover(&ctx, &sc, CoverRole::Set, &set_init, &none).is_ok());
        assert!(check_cover(&ctx, &sc, CoverRole::Reset, &reset_init, &none).is_ok());
    }

    #[test]
    fn expanded_cover_into_qr_passes() {
        let (stg, _, _) = toggle_setup();
        let ctx = StructuralContext::build(&stg).unwrap();
        let y = stg.signal_by_name("y").unwrap();
        let sc = ctx.signal_covers(y);
        let none = Cover::empty(stg.signal_count());
        // set = x (drops the y' literal): covers ER(y+)={10} and QR={11}.
        let set = Cover::from_cube("1-".parse().unwrap());
        assert!(check_cover(&ctx, &sc, CoverRole::Set, &set, &none).is_ok());
    }

    #[test]
    fn cover_touching_off_set_rejected() {
        let (stg, _, _) = toggle_setup();
        let ctx = StructuralContext::build(&stg).unwrap();
        let y = stg.signal_by_name("y").unwrap();
        let sc = ctx.signal_covers(y);
        let none = Cover::empty(stg.signal_count());
        // universe obviously hits ER(y-)/GQR0
        let bad = Cover::universe(stg.signal_count());
        assert_eq!(
            check_cover(&ctx, &sc, CoverRole::Set, &bad, &none),
            CheckResult::IntersectsOffSet
        );
        // missing the excitation region
        let empty = Cover::empty(stg.signal_count());
        assert!(matches!(
            check_cover(&ctx, &sc, CoverRole::Set, &empty, &none),
            CheckResult::MissesExcitation(_)
        ));
    }

    #[test]
    fn non_monotonic_cover_rejected() {
        // Burst2: d's set cover C(d+) = b1·b2·… ; craft a cover that is on
        // in ER(d+), off right after d+ …, on again later — detected by the
        // monotonicity walk on the paper's running example instead:
        let stg = benchmarks::running_example();
        let ctx = StructuralContext::build(&stg).unwrap();
        let d = stg.signal_by_name("d").unwrap();
        let sc = ctx.signal_covers(d);
        let none = Cover::empty(stg.signal_count());
        // Initial covers are fine.
        let dp1 = stg.transition_by_display("d+").unwrap();
        let dp2 = stg.transition_by_display("d+/2").unwrap();
        let set = sc.er[&dp1].or(&sc.er[&dp2]);
        assert!(check_cover(&ctx, &sc, CoverRole::Set, &set, &none).is_ok());
        // A cover that additionally grabs a code deep inside QR(d+/1)
        // ((a,b,c,d) = 1001, after both b- and c-) while skipping the fork
        // code 1111: on → off → on again — non-monotonic.
        let set_bad = set.or(&Cover::from_cube("1001".parse().unwrap()));
        assert!(matches!(
            check_cover(&ctx, &sc, CoverRole::Set, &set_bad, &none),
            CheckResult::NonMonotonic(_)
        ));
    }

    #[test]
    fn off_set_cover_orientation() {
        let (stg, _, _) = toggle_setup();
        let ctx = StructuralContext::build(&stg).unwrap();
        let y = stg.signal_by_name("y").unwrap();
        let sc = ctx.signal_covers(y);
        let off_set = off_set_cover(&sc, CoverRole::Set);
        let off_reset = off_set_cover(&sc, CoverRole::Reset);
        // set-off contains ER(y-) = {01}; reset-off contains ER(y+) = {10}.
        assert!(off_set.contains_vertex(&Bits::from_ones(2, [1])));
        assert!(off_reset.contains_vertex(&Bits::from_ones(2, [0])));
    }
}
