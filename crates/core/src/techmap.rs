//! Technology mapping onto a small speed-independent cell library
//! (Appendix F).
//!
//! The paper maps its signal networks through Boolean matching onto a
//! library with complex gates of up to four inputs (e.g. AOI22) plus the
//! asynchronous storage cells. This module ships such a library with a
//! transistor-pair area model and a greedy pattern matcher: every network
//! keeps its atomic-gate structure (decomposition is *not* allowed to break
//! speed independence, as the paper notes), and each atomic function is
//! matched to the cheapest covering cell or cell tree.

use crate::circuit::{Circuit, ImplKind};
use si_boolean::Cover;

/// A mapped cell instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellUse {
    /// Library cell name.
    pub cell: &'static str,
    /// Area in transistor pairs.
    pub area: usize,
}

/// A fully mapped circuit: cells plus total area.
#[derive(Clone, Debug, Default)]
pub struct MappedCircuit {
    /// All cell instances.
    pub cells: Vec<CellUse>,
    /// Total area in transistor pairs.
    pub area: usize,
}

/// Area of an n-input AND/OR cell in transistor pairs (n in 2..=4).
fn gate_area(n: usize) -> usize {
    // INV 1, 2-in 3, 3-in 4, 4-in 5 (CMOS series/parallel + output stage).
    match n {
        0 | 1 => 1,
        2 => 3,
        3 => 4,
        _ => 5,
    }
}

fn push(cells: &mut Vec<CellUse>, cell: &'static str, area: usize) {
    cells.push(CellUse { cell, area });
}

/// Maps one AND-plane cube of `k` literals as a tree of ≤4-input ANDs.
fn map_and(cells: &mut Vec<CellUse>, k: usize) {
    if k <= 1 {
        return; // a wire (or a literal) — no cell
    }
    let mut remaining = k;
    while remaining > 1 {
        let take = remaining.min(4);
        let name = match take {
            2 => "AND2",
            3 => "AND3",
            _ => "AND4",
        };
        push(cells, name, gate_area(take));
        remaining = remaining - take + 1;
    }
}

/// Maps an OR tree over `m` cube outputs.
fn map_or(cells: &mut Vec<CellUse>, m: usize) {
    if m <= 1 {
        return;
    }
    let mut remaining = m;
    while remaining > 1 {
        let take = remaining.min(4);
        let name = match take {
            2 => "OR2",
            3 => "OR3",
            _ => "OR4",
        };
        push(cells, name, gate_area(take));
        remaining = remaining - take + 1;
    }
}

/// Maps one sum-of-products network, trying the complex-gate patterns
/// first (AOI22 + INV covers two 2-literal cubes in one cell).
fn map_network(cells: &mut Vec<CellUse>, cover: &Cover) {
    let cubes = cover.cubes();
    if cubes.is_empty() {
        push(cells, "GND", 0);
        return;
    }
    // AOI22+INV Boolean match: exactly two cubes of two literals.
    if cubes.len() == 2 && cubes.iter().all(|c| c.literal_count() == 2) {
        push(cells, "AOI22", 4);
        push(cells, "INV", 1);
        return;
    }
    // AOI21+INV: one 2-literal and one 1-literal cube.
    if cubes.len() == 2 {
        let mut lits: Vec<usize> = cubes.iter().map(|c| c.literal_count()).collect();
        lits.sort_unstable();
        if lits == [1, 2] {
            push(cells, "AOI21", 3);
            push(cells, "INV", 1);
            return;
        }
    }
    for c in cubes {
        map_and(cells, c.literal_count());
    }
    map_or(cells, cubes.len());
}

/// Maps a whole circuit onto the library.
pub fn map_circuit(circuit: &Circuit) -> MappedCircuit {
    let mut cells = Vec::new();
    for imp in &circuit.implementations {
        match &imp.kind {
            ImplKind::Combinational { cover, inverted } => {
                map_network(&mut cells, cover);
                if *inverted {
                    push(&mut cells, "INV", 1);
                }
            }
            ImplKind::CLatch { set, reset } => {
                for c in set {
                    map_network(&mut cells, c);
                }
                map_or(&mut cells, set.len());
                for c in reset {
                    map_network(&mut cells, c);
                }
                map_or(&mut cells, reset.len());
                push(&mut cells, "C2", 4);
            }
            ImplKind::GcLatch { set, reset } => {
                // Generalized C cell absorbs up to 4+4 literals directly.
                let (ls, lr) = (set.literal_count(), reset.literal_count());
                if ls <= 4 && lr <= 4 {
                    push(&mut cells, "GC", 2 + ls + lr);
                } else {
                    map_network(&mut cells, set);
                    map_network(&mut cells, reset);
                    push(&mut cells, "C2", 4);
                }
            }
            ImplKind::GatedLatch { data, control } => {
                map_network(&mut cells, data);
                map_network(&mut cells, control);
                push(&mut cells, "LATCH", 4);
            }
        }
    }
    let area = cells.iter().map(|c| c.area).sum();
    MappedCircuit { cells, area }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_boolean::Cover;
    use si_stg::SignalId;

    fn cover(w: usize, cs: &[&str]) -> Cover {
        Cover::from_cubes(w, cs.iter().map(|s| s.parse().unwrap()))
    }

    fn combinational(c: Cover) -> Circuit {
        Circuit {
            implementations: vec![crate::circuit::SignalImplementation {
                signal: SignalId(0),
                kind: ImplKind::Combinational {
                    cover: c,
                    inverted: false,
                },
            }],
        }
    }

    #[test]
    fn aoi22_pattern_matched() {
        let m = map_circuit(&combinational(cover(4, &["11--", "--11"])));
        assert!(m.cells.iter().any(|c| c.cell == "AOI22"));
        // AOI22 (4) + INV (1) beats 2×AND2 (6) + OR2 (3).
        assert_eq!(m.area, 5);
    }

    #[test]
    fn wide_cube_becomes_and_tree() {
        let m = map_circuit(&combinational(cover(6, &["111111"])));
        // 6 literals: AND4 + AND3 (4+3 inputs collapse: 6 -> 3 -> 1)
        let names: Vec<_> = m.cells.iter().map(|c| c.cell).collect();
        assert!(names.contains(&"AND4"));
        assert!(m.area >= gate_area(4));
    }

    #[test]
    fn gc_cell_absorbs_small_latches() {
        let circuit = Circuit {
            implementations: vec![crate::circuit::SignalImplementation {
                signal: SignalId(0),
                kind: ImplKind::GcLatch {
                    set: cover(4, &["11--"]),
                    reset: cover(4, &["00--"]),
                },
            }],
        };
        let m = map_circuit(&circuit);
        assert_eq!(m.cells.len(), 1);
        assert_eq!(m.cells[0].cell, "GC");
        assert_eq!(m.area, 2 + 2 + 2);
    }

    #[test]
    fn mapping_never_beats_zero_and_scales() {
        // Mapped area grows with the function size.
        let small = map_circuit(&combinational(cover(4, &["11--"])));
        let large = map_circuit(&combinational(cover(
            8,
            &["1111----", "----1111", "11--11--"],
        )));
        assert!(small.area < large.area);
    }

    #[test]
    fn empty_cover_is_a_tie_cell() {
        let m = map_circuit(&combinational(Cover::empty(3)));
        assert_eq!(m.area, 0);
        assert_eq!(m.cells[0].cell, "GND");
    }
}
