//! Per-signal synthesis artifacts: content fingerprints and a wire form.
//!
//! The serving layer (`si-serve`) caches [`SignalClusters`] — the output of
//! the expensive [`derive_clusters`](crate::synthesis::derive_clusters)
//! search — per signal, addressed by [`signal_fingerprint`]. The
//! fingerprint covers the signal's full excitation/quiescence cover set
//! ([`SignalCovers`](crate::context::SignalCovers)) plus the options that
//! steer derivation, so an edit
//! that leaves a signal's covers untouched (e.g. a change in a concurrent
//! component) keys to the same artifact. The fingerprint is an *address*,
//! not a proof: `synthesize_signal` also reads broader context internals
//! (interleave cache, place covers, quiescent place sets), so consumers
//! must pass a cache hit through
//! [`revalidate_clusters`](crate::synthesis::revalidate_clusters) before
//! trusting it — soundness never rests on hash quality.
//!
//! The wire form addresses transitions by display name (`d+/2`) and cubes
//! in positional notation, so it round-trips between sessions that parsed
//! the same **canonical** `.g` text (see `si_stg::canonical_g`).

use crate::context::StructuralContext;
use crate::synthesis::{Architecture, SignalClusters, SynthesisOptions};
use si_boolean::hash::Fnv64;
use si_boolean::Cover;
use si_petri::TransId;
use si_stg::{SignalId, Stg};

fn hash_cover(h: &mut Fnv64, cover: &Cover) {
    h.write_usize(cover.cube_count());
    for cube in cover.cubes() {
        h.write_str(&cube.to_string());
    }
}

fn arch_tag(a: Architecture) -> &'static str {
    match a {
        Architecture::ComplexGate => "cg",
        Architecture::ExcitationFunction => "ef",
        Architecture::PerRegion => "pr",
    }
}

/// Content fingerprint of one signal's synthesis problem: the signal
/// alphabet (cube column meaning), the derivation-relevant options, and
/// the signal's complete cover set. Stable across sessions for the same
/// canonical specification.
pub fn signal_fingerprint(
    ctx: &StructuralContext<'_>,
    signal: SignalId,
    options: &SynthesisOptions,
) -> u64 {
    let stg = ctx.stg;
    let mut h = Fnv64::new();
    h.write_str("signal-fp-v1");
    for s in stg.signals() {
        h.write_str(stg.signal_name(s));
    }
    h.write_str(stg.signal_name(signal));
    h.write_str(arch_tag(options.architecture));
    let st = &options.stages;
    let bits = (st.expand as u64)
        | (st.merge as u64) << 1
        | (st.complete as u64) << 2
        | (st.collapse as u64) << 3
        | (st.backward as u64) << 4;
    h.write_u64(bits);
    h.write_str(options.minimizer.name());
    let sc = ctx.signal_covers(signal);
    for list in [&sc.rising, &sc.falling] {
        h.write_usize(list.len());
        for &t in list {
            h.write_str(&stg.transition_display(t));
            hash_cover(&mut h, &sc.er[&t]);
            hash_cover(&mut h, &sc.qr[&t]);
            hash_cover(&mut h, &sc.qr_restricted[&t]);
        }
    }
    for cover in [&sc.ger_rise, &sc.ger_fall, &sc.gqr_one, &sc.gqr_zero] {
        hash_cover(&mut h, cover);
    }
    h.finish()
}

fn write_side(out: &mut String, stg: &Stg, label: &str, side: &[(Vec<TransId>, Cover)]) {
    use std::fmt::Write;
    let _ = writeln!(out, "{} {}", label, side.len());
    for (own, cover) in side {
        let displays: Vec<String> = own.iter().map(|&t| stg.transition_display(t)).collect();
        let _ = writeln!(out, "own {}", displays.join(" "));
        let cubes: Vec<String> = cover.cubes().iter().map(|c| c.to_string()).collect();
        if cubes.is_empty() {
            let _ = writeln!(out, "cover");
        } else {
            let _ = writeln!(out, "cover {}", cubes.join(" "));
        }
    }
}

/// Serializes derived clusters to a stable text form (transition display
/// names + positional cubes).
pub fn clusters_to_wire(stg: &Stg, clusters: &SignalClusters) -> String {
    let mut out = format!("clusters-v1 signal={}\n", stg.signal_name(clusters.signal));
    write_side(&mut out, stg, "set", &clusters.set);
    write_side(&mut out, stg, "reset", &clusters.reset);
    out
}

fn read_side<'l>(
    stg: &Stg,
    lines: &mut std::str::Lines<'l>,
    label: &str,
) -> Option<Vec<(Vec<TransId>, Cover)>> {
    let w = stg.signal_count();
    let head = lines.next()?;
    let count: usize = head.strip_prefix(label)?.trim().parse().ok()?;
    let mut side = Vec::with_capacity(count);
    for _ in 0..count {
        let own_line = lines.next()?.strip_prefix("own ")?;
        let own: Option<Vec<TransId>> = own_line
            .split_whitespace()
            .map(|d| stg.transition_by_display(d))
            .collect();
        let cover_line = lines.next()?.strip_prefix("cover")?;
        let cubes: Option<Vec<si_boolean::Cube>> = cover_line
            .split_whitespace()
            .map(|c| c.parse().ok().filter(|c: &si_boolean::Cube| c.width() == w))
            .collect();
        side.push((own?, Cover::from_cubes(w, cubes?)));
    }
    Some(side)
}

/// Parses the [`clusters_to_wire`] form against a (canonically parsed)
/// STG. Returns `None` — a cache miss, never an error — when the text is
/// malformed or names transitions/widths the STG does not have.
pub fn clusters_from_wire(stg: &Stg, text: &str) -> Option<SignalClusters> {
    let mut lines = text.lines();
    let head = lines.next()?;
    let name = head.strip_prefix("clusters-v1 signal=")?;
    let signal = stg.signal_by_name(name)?;
    let set = read_side(stg, &mut lines, "set")?;
    let reset = read_side(stg, &mut lines, "reset")?;
    Some(SignalClusters { signal, set, reset })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesis::{derive_clusters, revalidate_clusters};
    use si_stg::benchmarks;

    #[test]
    fn wire_roundtrip_and_self_revalidation() {
        for stg in benchmarks::synthesizable_suite() {
            let ctx = StructuralContext::build(&stg).unwrap();
            for arch in [
                Architecture::ComplexGate,
                Architecture::ExcitationFunction,
                Architecture::PerRegion,
            ] {
                let options = SynthesisOptions {
                    architecture: arch,
                    ..Default::default()
                };
                for signal in stg.synthesized_signals() {
                    let clusters = derive_clusters(&ctx, signal, &options)
                        .unwrap_or_else(|e| panic!("{} {arch:?}: {e}", stg.name()));
                    let wire = clusters_to_wire(&stg, &clusters);
                    let back = clusters_from_wire(&stg, &wire)
                        .unwrap_or_else(|| panic!("{} {arch:?}:\n{wire}", stg.name()));
                    assert_eq!(back, clusters, "{} {arch:?}", stg.name());
                    // Freshly derived clusters must survive revalidation —
                    // otherwise the cache could never hit.
                    assert!(
                        revalidate_clusters(&ctx, &back, &options),
                        "{} {arch:?}: self-derived clusters failed revalidation",
                        stg.name()
                    );
                }
            }
        }
    }

    #[test]
    fn fingerprint_is_stable_and_signal_sensitive() {
        let stg = benchmarks::vme_read_csc();
        let ctx = StructuralContext::build(&stg).unwrap();
        let options = SynthesisOptions::default();
        let signals = stg.synthesized_signals();
        let fps: Vec<u64> = signals
            .iter()
            .map(|&s| signal_fingerprint(&ctx, s, &options))
            .collect();
        // Stable across recomputation (and, by construction, sessions).
        let ctx2 = StructuralContext::build(&stg).unwrap();
        for (&s, &fp) in signals.iter().zip(&fps) {
            assert_eq!(signal_fingerprint(&ctx2, s, &options), fp);
        }
        // Distinct per signal and sensitive to options.
        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i], fps[j]);
            }
        }
        let cg = SynthesisOptions {
            architecture: Architecture::ComplexGate,
            ..Default::default()
        };
        assert_ne!(signal_fingerprint(&ctx, signals[0], &cg), fps[0]);
    }

    #[test]
    fn malformed_wire_is_a_miss() {
        let stg = benchmarks::vme_read_csc();
        assert!(clusters_from_wire(&stg, "").is_none());
        assert!(clusters_from_wire(&stg, "clusters-v1 signal=nope\nset 0\nreset 0\n").is_none());
        assert!(clusters_from_wire(
            &stg,
            "clusters-v1 signal=d\nset 1\nown zz+\ncover\nreset 0\n"
        )
        .is_none());
    }
}
