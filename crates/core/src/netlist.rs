//! Structural netlist export.
//!
//! Renders a synthesized [`Circuit`] as a gate-level Verilog module: one
//! continuous assignment per atomic complex gate (the SI correctness
//! argument requires these to be implemented atomically — the paper's
//! §III-A caveat is preserved as a comment in the output) and behavioural
//! UDP-style processes for the storage elements.

use crate::circuit::{Circuit, ImplKind};
use si_boolean::{Cover, Cube, CubeVal};
use si_stg::{SignalKind, Stg};
use std::fmt::Write;

/// Renders a cube as a Verilog conjunction, e.g. `a & ~b & c`.
fn cube_expr(stg: &Stg, cube: &Cube) -> String {
    let mut terms = Vec::new();
    for (i, sig) in stg.signals().enumerate() {
        match cube.get(i) {
            CubeVal::One => terms.push(stg.signal_name(sig).to_string()),
            CubeVal::Zero => terms.push(format!("~{}", stg.signal_name(sig))),
            CubeVal::DontCare => {}
        }
    }
    if terms.is_empty() {
        "1'b1".to_string()
    } else {
        terms.join(" & ")
    }
}

/// Renders a cover as a Verilog sum of products.
fn cover_expr(stg: &Stg, cover: &Cover) -> String {
    if cover.is_empty() {
        return "1'b0".to_string();
    }
    cover
        .cubes()
        .iter()
        .map(|c| {
            if cover.cube_count() > 1 && c.literal_count() > 1 {
                format!("({})", cube_expr(stg, c))
            } else {
                cube_expr(stg, c)
            }
        })
        .collect::<Vec<_>>()
        .join(" | ")
}

/// Exports the circuit as a self-contained Verilog module named after the
/// STG. Inputs become module inputs; outputs and internal signals become
/// outputs/wires driven by the synthesized logic.
pub fn to_verilog(stg: &Stg, circuit: &Circuit) -> String {
    let mut v = String::new();
    let inputs: Vec<&str> = stg
        .signals()
        .filter(|&s| stg.signal_kind(s) == SignalKind::Input)
        .map(|s| stg.signal_name(s))
        .collect();
    let outputs: Vec<&str> = stg
        .signals()
        .filter(|&s| stg.signal_kind(s) == SignalKind::Output)
        .map(|s| stg.signal_name(s))
        .collect();
    let internals: Vec<&str> = stg
        .signals()
        .filter(|&s| stg.signal_kind(s) == SignalKind::Internal)
        .map(|s| stg.signal_name(s))
        .collect();

    let _ = writeln!(
        v,
        "// Speed-independent controller synthesized from STG `{}`.",
        stg.name()
    );
    let _ = writeln!(
        v,
        "// NOTE: each assign below must be implemented as ONE atomic complex"
    );
    let _ = writeln!(
        v,
        "// gate; decomposing it can re-introduce hazards (paper, Sec. III-A)."
    );
    let _ = writeln!(v, "module {} (", sanitize(stg.name()));
    let mut ports: Vec<String> = inputs
        .iter()
        .map(|n| format!("  input  wire {n}"))
        .collect();
    ports.extend(outputs.iter().map(|n| format!("  output wire {n}")));
    let _ = writeln!(v, "{}\n);", ports.join(",\n"));
    for n in &internals {
        let _ = writeln!(v, "  wire {n};");
    }

    for imp in &circuit.implementations {
        let name = stg.signal_name(imp.signal);
        let _ = writeln!(v);
        match &imp.kind {
            ImplKind::Combinational { cover, inverted } => {
                let expr = cover_expr(stg, cover);
                if *inverted {
                    let _ = writeln!(v, "  assign {name} = ~({expr});");
                } else {
                    let _ = writeln!(v, "  assign {name} = {expr};");
                }
            }
            ImplKind::CLatch { set, reset } => {
                let _ = writeln!(v, "  // C-latch for {name}");
                let mut set_terms = Vec::new();
                for (i, c) in set.iter().enumerate() {
                    let _ = writeln!(v, "  wire {name}_set_{i} = {};", cover_expr(stg, c));
                    set_terms.push(format!("{name}_set_{i}"));
                }
                let mut reset_terms = Vec::new();
                for (i, c) in reset.iter().enumerate() {
                    let _ = writeln!(v, "  wire {name}_reset_{i} = {};", cover_expr(stg, c));
                    reset_terms.push(format!("{name}_reset_{i}"));
                }
                let _ = writeln!(v, "  wire {name}_set = {};", set_terms.join(" | "));
                let _ = writeln!(v, "  wire {name}_reset = {};", reset_terms.join(" | "));
                let _ = writeln!(
                    v,
                    "  c_latch u_{name} (.s({name}_set), .r({name}_reset), .q({name}));"
                );
            }
            ImplKind::GcLatch { set, reset } => {
                let _ = writeln!(v, "  // generalized C element for {name}");
                let _ = writeln!(v, "  wire {name}_set = {};", cover_expr(stg, set));
                let _ = writeln!(v, "  wire {name}_reset = {};", cover_expr(stg, reset));
                let _ = writeln!(
                    v,
                    "  c_latch u_{name} (.s({name}_set), .r({name}_reset), .q({name}));"
                );
            }
            ImplKind::GatedLatch { data, control } => {
                let _ = writeln!(v, "  // transparent latch for {name}");
                let _ = writeln!(v, "  wire {name}_d = {};", cover_expr(stg, data));
                let _ = writeln!(v, "  wire {name}_en = {};", cover_expr(stg, control));
                let _ = writeln!(
                    v,
                    "  latch u_{name} (.d({name}_d), .en({name}_en), .q({name}));"
                );
            }
        }
    }
    let _ = writeln!(v, "endmodule");

    // Behavioural models of the storage cells, emitted once when used.
    if circuit
        .implementations
        .iter()
        .any(|i| matches!(i.kind, ImplKind::CLatch { .. } | ImplKind::GcLatch { .. }))
    {
        let _ = writeln!(
            v,
            "\nmodule c_latch (input wire s, input wire r, output reg q);\n  \
             initial q = 1'b0;\n  \
             always @(*) begin\n    if (s & ~r) q = 1'b1;\n    else if (r & ~s) q = 1'b0;\n  end\n\
             endmodule"
        );
    }
    if circuit
        .implementations
        .iter()
        .any(|i| matches!(i.kind, ImplKind::GatedLatch { .. }))
    {
        let _ = writeln!(
            v,
            "\nmodule latch (input wire d, input wire en, output reg q);\n  \
             initial q = 1'b0;\n  \
             always @(*) if (en) q = d;\n\
             endmodule"
        );
    }
    v
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesis::{synthesize, SynthesisOptions};

    #[test]
    fn verilog_for_clatch_has_c_element() {
        let stg = si_stg::generators::clatch(2);
        let syn = synthesize(&stg, &SynthesisOptions::default()).unwrap();
        let v = to_verilog(&stg, &syn.circuit);
        assert!(v.contains("module clatch_2"));
        assert!(v.contains("c_latch"));
        assert!(v.contains("input  wire x0"));
        assert!(v.contains("output wire z"));
        assert!(v.contains("module c_latch"));
    }

    #[test]
    fn verilog_for_wire_output_is_simple_assign() {
        let stg = si_stg::parse_g(
            "\
.model buf
.inputs x
.outputs y
.graph
x+ y+
y+ x-
x- y-
y- x+
.marking { <y-,x+> }
.end
",
        )
        .unwrap();
        let syn = synthesize(&stg, &SynthesisOptions::default()).unwrap();
        let v = to_verilog(&stg, &syn.circuit);
        assert!(v.contains("assign y = x;"));
        assert!(!v.contains("module c_latch"));
    }

    #[test]
    fn internal_signals_become_wires() {
        let stg = si_stg::benchmarks::vme_read_csc();
        let syn = synthesize(&stg, &SynthesisOptions::default()).unwrap();
        let v = to_verilog(&stg, &syn.circuit);
        assert!(v.contains("wire csc0;"));
        assert!(v.contains("output wire lds"));
    }

    #[test]
    fn empty_cover_renders_constant() {
        let c = Cover::empty(2);
        let stg = si_stg::generators::clatch(1);
        assert_eq!(cover_expr(&stg, &c), "1'b0");
    }
}
