//! Implementation architectures and the circuit model (§III-A, Fig. 3).
//!
//! A synthesized signal is realized by one of:
//!
//! * an **atomic complex gate** computing its whole next-state function
//!   (Fig. 3(a), or the "complete cover" case of the Appendix);
//! * a **C-latch** fed by set and reset networks — one atomic gate per
//!   network (Fig. 3(b)) or one gate per excitation-region cluster ORed
//!   together (Fig. 3(c));
//! * a **collapsed latch** (Appendix D): a gC cell absorbing single-cube
//!   set/reset networks, or a gated latch when the two cubes have the same
//!   support at distance one.
//!
//! Area is reported in normalized literal units (the SIS convention used by
//! the paper's tables): one unit per gate input literal, plus the OR fan-in
//! of multi-cube networks and a fixed cost per storage element.

use si_boolean::{Bits, Cover};
use si_stg::SignalId;

/// Cost of a C-latch storage element in literal units.
pub const CLATCH_COST: usize = 4;
/// Cost of the gC cell wrapper beyond its input literals.
pub const GC_COST: usize = 2;
/// Cost of the gated-latch wrapper beyond its input literals.
pub const GATED_LATCH_COST: usize = 3;

/// How one signal is implemented.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ImplKind {
    /// One atomic complex gate; `inverted` when the gate computes the
    /// complement (complete reset cover).
    Combinational {
        /// Sum-of-products computed by the gate.
        cover: Cover,
        /// Output inverter present.
        inverted: bool,
    },
    /// C-latch with set and reset networks, each a list of cluster gates.
    CLatch {
        /// Cluster gates ORed into the set input.
        set: Vec<Cover>,
        /// Cluster gates ORed into the reset input.
        reset: Vec<Cover>,
    },
    /// Single-cube set/reset collapsed into a gC cell.
    GcLatch {
        /// The set cube (as a one-cube cover).
        set: Cover,
        /// The reset cube.
        reset: Cover,
    },
    /// Distance-1, same-support collapse: a transparent latch
    /// `z' = control ? data : z`.
    GatedLatch {
        /// Data function.
        data: Cover,
        /// Latch-enable function.
        control: Cover,
    },
}

/// One synthesized signal with its chosen realization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignalImplementation {
    /// The implemented signal.
    pub signal: SignalId,
    /// The realization.
    pub kind: ImplKind,
}

fn network_area(covers: &[Cover]) -> usize {
    let mut area = 0;
    for c in covers {
        area += c.literal_count();
        if c.cube_count() > 1 {
            area += c.cube_count(); // OR gate fan-in
        }
    }
    if covers.len() > 1 {
        area += covers.len(); // second-level OR of cluster gates
    }
    area
}

impl SignalImplementation {
    /// Area of the realization in normalized literal units.
    pub fn literal_area(&self) -> usize {
        match &self.kind {
            ImplKind::Combinational { cover, inverted } => {
                network_area(std::slice::from_ref(cover)) + usize::from(*inverted)
            }
            ImplKind::CLatch { set, reset } => {
                network_area(set) + network_area(reset) + CLATCH_COST
            }
            ImplKind::GcLatch { set, reset } => {
                set.literal_count() + reset.literal_count() + GC_COST
            }
            ImplKind::GatedLatch { data, control } => {
                network_area(std::slice::from_ref(data))
                    + network_area(std::slice::from_ref(control))
                    + GATED_LATCH_COST
            }
        }
    }

    /// Evaluates the next value of the signal given the current binary code
    /// of all signals and the current value of this signal — the semantics
    /// used by verification and hazard simulation.
    pub fn next_value(&self, code: &Bits, current: bool) -> bool {
        let latch = |s: bool, r: bool| match (s, r) {
            (true, false) => true,
            (false, true) => false,
            _ => current,
        };
        match &self.kind {
            ImplKind::Combinational { cover, inverted } => cover.contains_vertex(code) != *inverted,
            ImplKind::CLatch { set, reset } => latch(
                set.iter().any(|c| c.contains_vertex(code)),
                reset.iter().any(|c| c.contains_vertex(code)),
            ),
            ImplKind::GcLatch { set, reset } => {
                latch(set.contains_vertex(code), reset.contains_vertex(code))
            }
            ImplKind::GatedLatch { data, control } => {
                if control.contains_vertex(code) {
                    data.contains_vertex(code)
                } else {
                    current
                }
            }
        }
    }

    /// The set/reset excitation covers, when the realization has them.
    pub fn excitation_covers(&self) -> Option<(Cover, Cover)> {
        match &self.kind {
            ImplKind::CLatch { set, reset } => {
                let join = |cs: &[Cover]| {
                    cs.iter().fold(
                        Cover::empty(cs.first().map_or(0, Cover::width)),
                        |acc, c| acc.or(c),
                    )
                };
                Some((join(set), join(reset)))
            }
            ImplKind::GcLatch { set, reset } => Some((set.clone(), reset.clone())),
            _ => None,
        }
    }
}

/// A synthesized circuit: one implementation per synthesized signal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Circuit {
    /// Implementations in signal order.
    pub implementations: Vec<SignalImplementation>,
}

impl Circuit {
    /// Total area in normalized literal units.
    pub fn literal_area(&self) -> usize {
        self.implementations
            .iter()
            .map(SignalImplementation::literal_area)
            .sum()
    }

    /// Looks up the implementation of a signal.
    pub fn implementation(&self, signal: SignalId) -> Option<&SignalImplementation> {
        self.implementations.iter().find(|i| i.signal == signal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(w: usize, cs: &[&str]) -> Cover {
        Cover::from_cubes(w, cs.iter().map(|s| s.parse().unwrap()))
    }

    #[test]
    fn combinational_semantics_and_area() {
        let imp = SignalImplementation {
            signal: SignalId(1),
            kind: ImplKind::Combinational {
                cover: cover(2, &["1-"]),
                inverted: false,
            },
        };
        assert!(imp.next_value(&Bits::from_ones(2, [0]), false));
        assert!(!imp.next_value(&Bits::from_ones(2, [1]), true));
        assert_eq!(imp.literal_area(), 1);

        let inv = SignalImplementation {
            signal: SignalId(1),
            kind: ImplKind::Combinational {
                cover: cover(2, &["1-"]),
                inverted: true,
            },
        };
        assert!(!inv.next_value(&Bits::from_ones(2, [0]), false));
        assert_eq!(inv.literal_area(), 2);
    }

    #[test]
    fn clatch_semantics() {
        let imp = SignalImplementation {
            signal: SignalId(1),
            kind: ImplKind::CLatch {
                set: vec![cover(2, &["10"])],
                reset: vec![cover(2, &["01"])],
            },
        };
        // set on, reset off -> 1
        assert!(imp.next_value(&Bits::from_ones(2, [0]), false));
        // reset on -> 0
        assert!(!imp.next_value(&Bits::from_ones(2, [1]), true));
        // neither -> hold
        assert!(imp.next_value(&Bits::from_ones(2, [0, 1]), true));
        assert!(!imp.next_value(&Bits::zeros(2), false));
        // area: 2 literals + 2 literals + latch
        assert_eq!(imp.literal_area(), 4 + CLATCH_COST);
    }

    #[test]
    fn gc_latch_and_gated_latch() {
        let gc = SignalImplementation {
            signal: SignalId(0),
            kind: ImplKind::GcLatch {
                set: cover(2, &["11"]),
                reset: cover(2, &["00"]),
            },
        };
        assert!(gc.next_value(&Bits::from_ones(2, [0, 1]), false));
        assert!(!gc.next_value(&Bits::zeros(2), true));
        assert_eq!(gc.literal_area(), 4 + GC_COST);

        let gl = SignalImplementation {
            signal: SignalId(0),
            kind: ImplKind::GatedLatch {
                data: cover(2, &["-1"]),
                control: cover(2, &["1-"]),
            },
        };
        // control on: follow data
        assert!(gl.next_value(&Bits::from_ones(2, [0, 1]), false));
        assert!(!gl.next_value(&Bits::from_ones(2, [0]), true));
        // control off: hold
        assert!(gl.next_value(&Bits::from_ones(2, [1]), true));
    }

    #[test]
    fn multi_cluster_area_counts_or_levels() {
        let imp = SignalImplementation {
            signal: SignalId(0),
            kind: ImplKind::CLatch {
                set: vec![cover(3, &["11-"]), cover(3, &["1-1"])],
                reset: vec![cover(3, &["000"])],
            },
        };
        // set: 2+2 literals + cluster OR (2); reset: 3; latch 4
        assert_eq!(imp.literal_area(), 4 + 2 + 3 + CLATCH_COST);
        let (s, r) = imp.excitation_covers().unwrap();
        assert_eq!(s.cube_count(), 2);
        assert_eq!(r.cube_count(), 1);
    }

    #[test]
    fn circuit_totals() {
        let c = Circuit {
            implementations: vec![
                SignalImplementation {
                    signal: SignalId(0),
                    kind: ImplKind::Combinational {
                        cover: cover(2, &["11"]),
                        inverted: false,
                    },
                },
                SignalImplementation {
                    signal: SignalId(1),
                    kind: ImplKind::GcLatch {
                        set: cover(2, &["10"]),
                        reset: cover(2, &["01"]),
                    },
                },
            ],
        };
        assert_eq!(c.literal_area(), 2 + 4 + GC_COST);
        assert!(c.implementation(SignalId(1)).is_some());
        assert!(c.implementation(SignalId(9)).is_none());
    }
}
