//! The synthesis methodology (§VIII + Appendix).
//!
//! Two-step heuristic synthesis: derive initial set/reset excitation covers
//! satisfying the implementability conditions, then apply the minimization
//! stages of the Appendix while re-validating correctness and monotonicity
//! structurally after every transformation:
//!
//! | stage | transformation | paper |
//! |-------|----------------|-------|
//! | M0 | literal expansion toward QR and dc-set | App. C |
//! | M1 | transition-cluster merging | App. A/C |
//! | M2 | complete region covers (drop the latch) | App. B |
//! | M3 | collapsing of memory elements (gC / gated latch) | App. D |
//! | M4 | backward region expansions | App. E |

use crate::checks::{check_cluster, monotonicity_violation, off_set_cover, CoverRole};
use crate::circuit::{Circuit, ImplKind, SignalImplementation};
use crate::context::{CscVerdict, SignalCovers, StructuralContext, SynthesisError};
use si_boolean::{Cover, Cube, MinimizeResult, Minimizer};
use si_petri::TransId;
use si_stg::{SignalId, Stg};

/// Run a minimizer backend under its observability span, recording the
/// call count and literal before/after totals on the shared registry.
/// Every two-level minimization in the crate goes through here so the
/// profile attributes minimizer time per backend.
pub(crate) fn observed_minimize(
    backend: &dyn Minimizer,
    on: &Cover,
    dc: &Cover,
    off: &Cover,
) -> MinimizeResult {
    let _span = si_obs::span(match backend.name() {
        "espresso" => "minimize.espresso",
        "exact" => "minimize.exact",
        "bdd" => "minimize.bdd",
        _ => "minimize.auto",
    });
    let result = backend.minimize(on, dc, off);
    if si_obs::enabled() {
        si_obs::counter_inc("minimize.calls");
        si_obs::counter_add("minimize.literals_before", result.literals_before as u64);
        si_obs::counter_add("minimize.literals_after", result.literals_after as u64);
    }
    result
}

/// The implementation architecture (Fig. 3).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Architecture {
    /// One atomic complex gate per signal (Fig. 3(a)).
    ComplexGate,
    /// Atomic complex gate per excitation function + C-latch (Fig. 3(b)).
    ExcitationFunction,
    /// Atomic complex gate per excitation region, one-hot clusters
    /// (Fig. 3(c)).
    PerRegion,
}

/// Which minimization stages run (cumulative in the Fig. 13 sweep).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct MinimizeStages {
    /// M0: literal expansion toward the quiescent regions and dc-set.
    pub expand: bool,
    /// M1: merging of transition clusters (per-region architecture).
    pub merge: bool,
    /// M2: complete-cover detection (combinational implementation).
    pub complete: bool,
    /// M3: collapsing set/reset into gC or gated latches.
    pub collapse: bool,
    /// M4: backward region expansion.
    pub backward: bool,
}

impl MinimizeStages {
    /// No minimization: raw initial covers.
    pub fn none() -> Self {
        MinimizeStages {
            expand: false,
            merge: false,
            complete: false,
            collapse: false,
            backward: false,
        }
    }

    /// Everything enabled.
    pub fn full() -> Self {
        MinimizeStages {
            expand: true,
            merge: true,
            complete: true,
            collapse: true,
            backward: true,
        }
    }

    /// The cumulative stage `n` of the Fig. 13 sweep (0 = M0 … 4 = M4).
    pub fn stage(n: usize) -> Self {
        MinimizeStages {
            expand: true,
            merge: n >= 1,
            complete: n >= 2,
            collapse: n >= 3,
            backward: n >= 4,
        }
    }
}

impl Default for MinimizeStages {
    fn default() -> Self {
        MinimizeStages::full()
    }
}

/// Options of a synthesis run.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct SynthesisOptions {
    /// Target architecture.
    pub architecture: Architecture,
    /// Minimization stages.
    pub stages: MinimizeStages,
    /// Two-level minimizer backend for the cover minimizations that are
    /// plain Boolean problems: the complex-gate architecture (Fig. 3(a))
    /// and the state-based baselines. The excitation-function ladder
    /// (M0–M4) keeps its structural expansion loop regardless — its moves
    /// are re-validated against monotonicity, which a generic backend
    /// cannot do.
    pub minimizer: si_boolean::MinimizerChoice,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions {
            architecture: Architecture::ExcitationFunction,
            stages: MinimizeStages::full(),
            minimizer: si_boolean::MinimizerChoice::Espresso,
        }
    }
}

/// Result for one signal.
#[derive(Clone, Debug)]
pub struct SignalResult {
    /// The signal.
    pub signal: SignalId,
    /// Chosen realization.
    pub implementation: SignalImplementation,
    /// Set clusters (owned transitions + cover) before realization.
    pub set_clusters: Vec<(Vec<TransId>, Cover)>,
    /// Reset clusters before realization.
    pub reset_clusters: Vec<(Vec<TransId>, Cover)>,
}

/// A complete synthesis result.
#[derive(Clone, Debug)]
pub struct Synthesis {
    /// One result per synthesized signal.
    pub results: Vec<SignalResult>,
    /// The circuit (implementations only).
    pub circuit: Circuit,
    /// Total area in normalized literal units.
    pub literal_area: usize,
    /// Refinement rounds the context needed.
    pub refinement_rounds: usize,
    /// Total cubes over all place cover functions (Table VIII statistic).
    pub place_cover_cubes: usize,
    /// Size of the SM-cover used.
    pub sm_count: usize,
    /// The structural CSC verdict.
    pub csc: CscVerdict,
}

/// Runs the full structural synthesis flow on an STG.
///
/// # Errors
///
/// Propagates context precondition failures and rejects STGs whose CSC
/// property cannot be established structurally.
///
/// # Examples
///
/// Synthesizing the 2-input generalized C-latch of Fig. 7 yields one
/// implementation (the output `z`) realized as a collapsed latch:
///
/// ```
/// use si_core::{synthesize, SynthesisOptions};
///
/// let stg = si_stg::generators::clatch(2);
/// let syn = synthesize(&stg, &SynthesisOptions::default())?;
/// assert_eq!(syn.results.len(), 1);
/// assert!(syn.literal_area > 0);
/// # Ok::<(), si_core::SynthesisError>(())
/// ```
pub fn synthesize(stg: &Stg, options: &SynthesisOptions) -> Result<Synthesis, SynthesisError> {
    crate::Engine::new(stg).options(*options).synthesize()
}

/// Like [`synthesize`] but reusing an existing context (the expensive
/// structural analyses are shared across architecture/stage sweeps).
pub fn synthesize_with_context(
    ctx: &StructuralContext<'_>,
    options: &SynthesisOptions,
) -> Result<Synthesis, SynthesisError> {
    let csc = ctx.csc_verdict();
    if let CscVerdict::Unknown { places } = &csc {
        return Err(SynthesisError::CscViolationPossible {
            places: places.clone(),
        });
    }
    let results = synthesize_signals(ctx, &ctx.stg.synthesized_signals(), options)?;
    let circuit = Circuit {
        implementations: results.iter().map(|r| r.implementation.clone()).collect(),
    };
    let literal_area = circuit.literal_area();
    Ok(Synthesis {
        results,
        circuit,
        literal_area,
        refinement_rounds: ctx.refinement_rounds,
        place_cover_cubes: ctx.total_cubes(),
        sm_count: ctx.sm_cover.len(),
        csc,
    })
}

/// Synthesizes a batch of signals, in parallel across worker threads when
/// the `parallel` feature is on (the default). Signals are independent given
/// the shared immutable context, so the result — including which error is
/// reported when several signals fail — is identical to the sequential
/// loop: results come back in input order and the failure of the
/// earliest-listed failing signal wins.
///
/// Workers are panic-isolated: a panic while synthesizing one signal is
/// caught at the worker boundary and recorded as that signal's
/// [`SynthesisError::WorkerPanicked`] — it competes for the
/// earliest-listed-failure slot like any other per-signal error, and the
/// process stays alive.
pub fn synthesize_signals(
    ctx: &StructuralContext<'_>,
    signals: &[SignalId],
    options: &SynthesisOptions,
) -> Result<Vec<SignalResult>, SynthesisError> {
    #[cfg(feature = "parallel")]
    {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(signals.len());
        if workers > 1 {
            let next = std::sync::atomic::AtomicUsize::new(0);
            let slots: Vec<std::sync::Mutex<Option<Result<SignalResult, SynthesisError>>>> =
                signals
                    .iter()
                    .map(|_| std::sync::Mutex::new(None))
                    .collect();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(&signal) = signals.get(i) else { break };
                        let r = si_fault::run_isolated(|| {
                            // Injection site: a worker that panics on the
                            // i-th signal of the batch.
                            si_fault::fail_point!("synthesis::signal", i);
                            synthesize_signal(ctx, signal, options)
                        })
                        .unwrap_or_else(|detail| {
                            Err(SynthesisError::WorkerPanicked { signal, detail })
                        });
                        *si_fault::relock(&slots[i]) = Some(r);
                    });
                }
            });
            return slots
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .expect("worker filled every slot")
                })
                .collect();
        }
    }
    signals
        .iter()
        .map(|&signal| synthesize_signal(ctx, signal, options))
        .collect()
}

/// Synthesizes one signal under the chosen architecture.
pub fn synthesize_signal(
    ctx: &StructuralContext<'_>,
    signal: SignalId,
    options: &SynthesisOptions,
) -> Result<SignalResult, SynthesisError> {
    let sc = ctx.signal_covers(signal);
    let clusters = derive_clusters_from(ctx, &sc, options)?;
    Ok(realize_from(&sc, &clusters, options))
}

/// The expensive half of one signal's synthesis, as cacheable data: the
/// set/reset transition clusters with their covers after the search-heavy
/// minimization stages (initial covers, M0 expansion, M1 merging, M4
/// backward expansion). The cheap realization decision (M2/M3) is *not*
/// part of this — [`realize_clusters`] recomputes it every time, so the
/// serving layer can cache clusters per signal and still re-decide the
/// latch architecture against the current context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignalClusters {
    /// The signal these clusters implement.
    pub signal: SignalId,
    /// Set-network clusters (owned rising transitions + cover).
    pub set: Vec<(Vec<TransId>, Cover)>,
    /// Reset-network clusters (owned falling transitions + cover).
    pub reset: Vec<(Vec<TransId>, Cover)>,
}

/// Runs the expensive cluster derivation for one signal (everything of
/// [`synthesize_signal`] except the final realization decision).
///
/// # Errors
///
/// As [`synthesize_signal`].
pub fn derive_clusters(
    ctx: &StructuralContext<'_>,
    signal: SignalId,
    options: &SynthesisOptions,
) -> Result<SignalClusters, SynthesisError> {
    derive_clusters_from(ctx, &ctx.signal_covers(signal), options)
}

/// Realizes previously derived clusters: the cheap M2/M3 decision picking
/// combinational, C-latch, gC or gated-latch form. Deterministic given
/// (context, clusters, options); [`synthesize_signal`] is exactly
/// [`derive_clusters`] followed by this.
pub fn realize_clusters(
    ctx: &StructuralContext<'_>,
    clusters: &SignalClusters,
    options: &SynthesisOptions,
) -> SignalResult {
    realize_from(&ctx.signal_covers(clusters.signal), clusters, options)
}

/// Re-checks cached clusters against the **current** context: every
/// cluster must still pass [`check_cluster`] (ER inclusion, off-set
/// exclusion modulo the backward don't-cares, monotonicity) and the
/// cluster partition must still match the signal's transitions. This is
/// what makes cross-session reuse sound independent of how the cache is
/// keyed: a stale or hash-colliding artifact fails revalidation and the
/// caller falls back to [`derive_clusters`].
pub fn revalidate_clusters(
    ctx: &StructuralContext<'_>,
    clusters: &SignalClusters,
    options: &SynthesisOptions,
) -> bool {
    let sc = ctx.signal_covers(clusters.signal);
    let w = ctx.stg.signal_count();
    let widths_ok = |cs: &[(Vec<TransId>, Cover)]| cs.iter().all(|(_, c)| c.width() == w);
    if !widths_ok(&clusters.set) || !widths_ok(&clusters.reset) {
        return false;
    }
    // The clusters must partition exactly the signal's current transitions.
    let partitions = |cs: &[(Vec<TransId>, Cover)], all: &[TransId]| {
        let mut owned: Vec<TransId> = cs.iter().flat_map(|(own, _)| own.iter().copied()).collect();
        owned.sort_unstable();
        let mut expect = all.to_vec();
        expect.sort_unstable();
        owned == expect
    };
    if !partitions(&clusters.set, &sc.rising) || !partitions(&clusters.reset, &sc.falling) {
        return false;
    }
    match options.architecture {
        Architecture::ComplexGate => {
            let on_req = sc.ger_rise.or(&sc.gqr_one);
            let off = sc.ger_fall.or(&sc.gqr_zero);
            clusters.set.len() == 1
                && clusters.reset.len() == 1
                && !on_req.intersects(&off)
                && clusters.set[0].1.covers(&on_req)
                && !clusters.set[0].1.intersects(&off)
        }
        Architecture::ExcitationFunction | Architecture::PerRegion => {
            let per_region = options.architecture == Architecture::PerRegion;
            let union = |cs: &[(Vec<TransId>, Cover)]| {
                cs.iter().fold(Cover::empty(w), |acc, (_, c)| acc.or(c))
            };
            let set_union = union(&clusters.set);
            let reset_union = union(&clusters.reset);
            for (side, role, opposite) in [
                (&clusters.set, CoverRole::Set, &reset_union),
                (&clusters.reset, CoverRole::Reset, &set_union),
            ] {
                for (own, cover) in side {
                    let off = cluster_off(ctx, &sc, role, own, per_region);
                    let bdc = if options.stages.backward {
                        backward_dc(ctx, &sc, role, own, opposite)
                    } else {
                        Cover::empty(w)
                    };
                    if !check_cluster(ctx, &sc, own, cover, &off, &bdc).is_ok() {
                        return false;
                    }
                }
            }
            true
        }
    }
}

fn derive_clusters_from(
    ctx: &StructuralContext<'_>,
    sc: &SignalCovers,
    options: &SynthesisOptions,
) -> Result<SignalClusters, SynthesisError> {
    match options.architecture {
        Architecture::ComplexGate => complex_gate_clusters(ctx, sc, options),
        Architecture::ExcitationFunction => excitation_clusters(ctx, sc, options, false),
        Architecture::PerRegion => excitation_clusters(ctx, sc, options, true),
    }
}

fn realize_from(
    sc: &SignalCovers,
    clusters: &SignalClusters,
    options: &SynthesisOptions,
) -> SignalResult {
    match options.architecture {
        Architecture::ComplexGate => realize_complex_gate(sc, clusters),
        Architecture::ExcitationFunction | Architecture::PerRegion => {
            realize_excitation(sc, clusters, options)
        }
    }
}

/// Fig. 3(a), derivation half: the minimized next-state cover.
fn complex_gate_clusters(
    ctx: &StructuralContext<'_>,
    sc: &SignalCovers,
    options: &SynthesisOptions,
) -> Result<SignalClusters, SynthesisError> {
    let on_req = sc.ger_rise.or(&sc.gqr_one);
    let off = sc.ger_fall.or(&sc.gqr_zero);
    if on_req.intersects(&off) {
        return Err(SynthesisError::CoverCheckFailed {
            signal: sc.signal,
            detail: "on/off region approximations overlap".into(),
        });
    }
    let cover = if options.stages.expand {
        observed_minimize(
            options.minimizer.backend(),
            &on_req,
            &Cover::empty(on_req.width()),
            &off,
        )
        .cover
    } else {
        on_req.clone()
    };
    debug_assert!(cover.covers(&on_req));
    Ok(SignalClusters {
        signal: sc.signal,
        set: vec![(sc.rising.clone(), cover)],
        reset: vec![(sc.falling.clone(), Cover::empty(ctx.stg.signal_count()))],
    })
}

/// Fig. 3(a), realization half: one atomic complex gate.
fn realize_complex_gate(sc: &SignalCovers, clusters: &SignalClusters) -> SignalResult {
    let cover = clusters.set[0].1.clone();
    SignalResult {
        signal: sc.signal,
        implementation: SignalImplementation {
            signal: sc.signal,
            kind: ImplKind::Combinational {
                cover,
                inverted: false,
            },
        },
        set_clusters: clusters.set.clone(),
        reset_clusters: clusters.reset.clone(),
    }
}

/// Fig. 3(b)/(c), derivation half: initial set/reset clusters through the
/// search-heavy stages of the ladder (M0, M1, M4).
fn excitation_clusters(
    ctx: &StructuralContext<'_>,
    sc: &SignalCovers,
    options: &SynthesisOptions,
    per_region: bool,
) -> Result<SignalClusters, SynthesisError> {
    let stages = &options.stages;
    let w = ctx.stg.signal_count();

    // Initial clusters. In the per-region architecture, transitions whose
    // ER covers intersect cannot obey the one-hot discipline as separate
    // gates and are pre-merged into one cluster (the paper's Fig. 4(c)
    // merge of d+/1 and d+/2).
    let initial = |transitions: &[TransId]| -> Vec<(Vec<TransId>, Cover)> {
        if per_region {
            let mut clusters: Vec<(Vec<TransId>, Cover)> = Vec::new();
            for &t in transitions {
                let er = sc.er[&t].clone();
                match clusters.iter_mut().find(|(_, c)| c.intersects(&er)) {
                    Some((own, c)) => {
                        own.push(t);
                        *c = c.or(&er);
                    }
                    None => clusters.push((vec![t], er)),
                }
            }
            clusters
        } else {
            vec![(
                transitions.to_vec(),
                transitions
                    .iter()
                    .fold(Cover::empty(w), |acc, t| acc.or(&sc.er[t])),
            )]
        }
    };
    let mut set_clusters = initial(&sc.rising);
    let mut reset_clusters = initial(&sc.falling);

    // Validate the initial covers.
    for (clusters, role) in [
        (&set_clusters, CoverRole::Set),
        (&reset_clusters, CoverRole::Reset),
    ] {
        for (own, cover) in clusters.iter() {
            let off = cluster_off(ctx, sc, role, own, per_region);
            let r = check_cluster(ctx, sc, own, cover, &off, &Cover::empty(w));
            if !r.is_ok() {
                return Err(SynthesisError::CoverCheckFailed {
                    signal: sc.signal,
                    detail: format!("initial cover invalid: {r:?}"),
                });
            }
        }
    }

    // M0: expansion.
    if stages.expand {
        for (clusters, role) in [
            (&mut set_clusters, CoverRole::Set),
            (&mut reset_clusters, CoverRole::Reset),
        ] {
            for (own, cover) in clusters.iter_mut() {
                let off = cluster_off(ctx, sc, role, own, per_region);
                *cover = expand_cluster_cover(ctx, sc, own, cover, &off, &Cover::empty(w));
            }
        }
    }

    // M1: cluster merging (only meaningful per-region).
    if stages.merge && per_region {
        for (clusters, role) in [
            (&mut set_clusters, CoverRole::Set),
            (&mut reset_clusters, CoverRole::Reset),
        ] {
            merge_clusters(ctx, sc, role, clusters);
        }
    }

    // M4: backward expansion (needs the opposite union cover).
    if stages.backward {
        let union =
            |cs: &[(Vec<TransId>, Cover)]| cs.iter().fold(Cover::empty(w), |acc, (_, c)| acc.or(c));
        let reset_union = union(&reset_clusters);
        let set_union = union(&set_clusters);
        for (clusters, role, opposite) in [
            (&mut set_clusters, CoverRole::Set, &reset_union),
            (&mut reset_clusters, CoverRole::Reset, &set_union),
        ] {
            for (own, cover) in clusters.iter_mut() {
                let bdc = backward_dc(ctx, sc, role, own, opposite);
                if bdc.is_empty() {
                    continue;
                }
                let off = cluster_off(ctx, sc, role, own, per_region);
                *cover = expand_cluster_cover(ctx, sc, own, cover, &off, &bdc);
            }
        }
    }

    Ok(SignalClusters {
        signal: sc.signal,
        set: set_clusters,
        reset: reset_clusters,
    })
}

/// Fig. 3(b)/(c), realization half: the M2/M3 decision over derived
/// clusters — complete covers → combinational, single-cube pairs →
/// gC/gated latch, otherwise the C-latch.
fn realize_excitation(
    sc: &SignalCovers,
    clusters: &SignalClusters,
    options: &SynthesisOptions,
) -> SignalResult {
    let stages = &options.stages;
    let w = sc.gqr_one.width();
    let set_clusters = &clusters.set;
    let reset_clusters = &clusters.reset;

    // M2: complete covers → combinational implementation.
    let set_union = set_clusters
        .iter()
        .fold(Cover::empty(w), |acc, (_, c)| acc.or(c));
    let reset_union = reset_clusters
        .iter()
        .fold(Cover::empty(w), |acc, (_, c)| acc.or(c));
    let set_complete = stages.complete && set_union.covers(&sc.gqr_one);
    let reset_complete = stages.complete && reset_union.covers(&sc.gqr_zero);
    let kind = if set_complete
        && (!reset_complete || set_union.literal_count() <= reset_union.literal_count() + 1)
    {
        // Appendix B: when both functions are complete, take the smaller
        // one (the reset variant pays one inverter).
        ImplKind::Combinational {
            cover: set_union.clone(),
            inverted: false,
        }
    } else if reset_complete {
        ImplKind::Combinational {
            cover: reset_union.clone(),
            inverted: true,
        }
    } else if stages.collapse && set_union.cube_count() == 1 && reset_union.cube_count() == 1 {
        // M3: collapse into a gated latch (distance 1, same support) or gC.
        let s = &set_union.cubes()[0];
        let r = &reset_union.cubes()[0];
        if s.care() == r.care() && s.distance(r) == 1 {
            let var = {
                let mut diff = s.val().clone();
                diff.xor_with(r.val());
                diff.first_one().expect("distance 1")
            };
            let mut control = s.clone();
            control.set(var, None);
            ImplKind::GatedLatch {
                data: Cover::from_cube(Cube::literal(w, var, s.val().get(var))),
                control: Cover::from_cube(control),
            }
        } else {
            ImplKind::GcLatch {
                set: set_union.clone(),
                reset: reset_union.clone(),
            }
        }
    } else {
        ImplKind::CLatch {
            set: set_clusters.iter().map(|(_, c)| c.clone()).collect(),
            reset: reset_clusters.iter().map(|(_, c)| c.clone()).collect(),
        }
    };

    SignalResult {
        signal: sc.signal,
        implementation: SignalImplementation {
            signal: sc.signal,
            kind,
        },
        set_clusters: set_clusters.clone(),
        reset_clusters: reset_clusters.clone(),
    }
}

/// The off-set of a cluster: the opposite generalized regions plus — in the
/// per-region architecture — the one-hot exclusions of eq. (3)/(4): the ERs
/// of the other own-direction transitions and the quiescent codes outside
/// the cluster's restricted QRs.
fn cluster_off(
    ctx: &StructuralContext<'_>,
    sc: &SignalCovers,
    role: CoverRole,
    own: &[TransId],
    per_region: bool,
) -> Cover {
    let mut off = off_set_cover(sc, role);
    if per_region {
        let own_dir = role.own_transitions(sc);
        for &u in own_dir {
            if !own.contains(&u) {
                off = off.or(&sc.er[&u]);
            }
        }
        // Quiescent codes of the own direction that lie outside the
        // cluster's restricted QRs (shared QR markings must stay uncovered).
        let mut own_qr = Cover::empty(off.width());
        for &u in own_dir {
            own_qr = own_qr.or(&sc.qr[&u]);
        }
        for &t in own {
            own_qr = own_qr.sharp(&ctx.qr_restricted_for(t, own));
        }
        off = off.or(&own_qr);
    }
    off
}

/// Greedy literal expansion plus irredundancy under the structural checks.
fn expand_cluster_cover(
    ctx: &StructuralContext<'_>,
    sc: &SignalCovers,
    own: &[TransId],
    cover0: &Cover,
    off: &Cover,
    backward_dc: &Cover,
) -> Cover {
    let w = cover0.width();
    let effective_off = if backward_dc.is_empty() {
        off.clone()
    } else {
        off.sharp(backward_dc)
    };
    let monotonic = |cover: &Cover| -> bool {
        own.iter()
            .all(|&t| monotonicity_violation(ctx, sc, t, cover).is_none())
    };

    let mut cover = cover0.clone();
    loop {
        let mut improved = false;
        'outer: for i in 0..cover.cube_count() {
            let cube = cover.cubes()[i].clone();
            for var in cube.care().iter_ones().collect::<Vec<_>>() {
                let mut cand = cube.clone();
                cand.set(var, None);
                if effective_off.intersects_cube(&cand) {
                    continue;
                }
                let mut cubes = cover.cubes().to_vec();
                cubes[i] = cand;
                let cand_cover = Cover::from_cubes(w, cubes);
                if monotonic(&cand_cover) {
                    cover = cand_cover;
                    improved = true;
                    break 'outer;
                }
            }
        }
        if !improved {
            break;
        }
    }

    cover.remove_single_cube_contained();

    // Irredundancy: drop cubes whose removal keeps the ERs covered and the
    // cover monotonic.
    let mut i = 0;
    while cover.cube_count() > 1 && i < cover.cube_count() {
        let mut cubes = cover.cubes().to_vec();
        cubes.remove(i);
        let cand = Cover::from_cubes(w, cubes);
        let ok = own.iter().all(|&t| cand.covers(&sc.er[&t])) && monotonic(&cand);
        if ok {
            cover = cand;
        } else {
            i += 1;
        }
    }
    cover
}

/// Greedy pairwise merging of same-direction clusters while the result
/// passes the checks and shrinks the literal count (Appendix A/C).
fn merge_clusters(
    ctx: &StructuralContext<'_>,
    sc: &SignalCovers,
    role: CoverRole,
    clusters: &mut Vec<(Vec<TransId>, Cover)>,
) {
    let w = ctx.stg.signal_count();
    loop {
        let mut best: Option<(usize, usize, Cover, usize)> = None;
        for i in 0..clusters.len() {
            for j in i + 1..clusters.len() {
                let mut own: Vec<TransId> = clusters[i].0.clone();
                own.extend_from_slice(&clusters[j].0);
                own.sort_unstable();
                let off = cluster_off(ctx, sc, role, &own, true);
                let seed = clusters[i].1.or(&clusters[j].1);
                let merged = expand_cluster_cover(ctx, sc, &own, &seed, &off, &Cover::empty(w));
                if !check_cluster(ctx, sc, &own, &merged, &off, &Cover::empty(w)).is_ok() {
                    continue;
                }
                let cost_now = cluster_area(&clusters[i].1) + cluster_area(&clusters[j].1);
                let cost_merged = cluster_area(&merged);
                if cost_merged < cost_now
                    && best.as_ref().is_none_or(|&(_, _, _, b)| cost_merged < b)
                {
                    best = Some((i, j, merged, cost_merged));
                }
            }
        }
        match best {
            Some((i, j, merged, _)) => {
                let (own_j, _) = clusters.remove(j);
                let (own_i, _) = clusters.remove(i);
                let mut own = own_i;
                own.extend(own_j);
                own.sort_unstable();
                clusters.push((own, merged));
            }
            None => break,
        }
    }
}

fn cluster_area(c: &Cover) -> usize {
    c.literal_count()
        + if c.cube_count() > 1 {
            c.cube_count()
        } else {
            0
        }
}

/// The observability don't-care set of backward expansion (Appendix E):
/// codes of backward-quiescent-place markings still covered by the opposite
/// (predecessor cluster) cover.
fn backward_dc(
    ctx: &StructuralContext<'_>,
    sc: &SignalCovers,
    role: CoverRole,
    own: &[TransId],
    opposite_cover: &Cover,
) -> Cover {
    let w = ctx.stg.signal_count();
    let opposite_ger = match role {
        CoverRole::Set => &sc.ger_fall,
        CoverRole::Reset => &sc.ger_rise,
    };
    let mut dc = Cover::empty(w);
    for &t in own {
        for &u in ctx.analysis.prev_of(t) {
            if let Some(places) = ctx.cubes.pair_places.get(&(u, t)) {
                for pi in places.iter_ones() {
                    let f = ctx.place_cover[pi].sharp(opposite_ger);
                    dc = dc.or(&f);
                }
            }
        }
    }
    dc.and(opposite_cover)
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_stg::benchmarks;

    #[test]
    fn toggle_output_becomes_a_buffer() {
        // y's next-state function is just x.
        let stg = si_stg::parse_g(
            "\
.model toggle
.inputs x
.outputs y
.graph
x+ y+
y+ x-
x- y-
y- x+
.marking { <y-,x+> }
.end
",
        )
        .unwrap();
        let syn = synthesize(&stg, &SynthesisOptions::default()).unwrap();
        assert_eq!(syn.results.len(), 1);
        match &syn.results[0].implementation.kind {
            ImplKind::Combinational { cover, inverted } => {
                assert!(!inverted);
                assert_eq!(cover.cube_count(), 1);
                assert_eq!(cover.literal_count(), 1);
            }
            other => panic!("expected combinational buffer, got {other:?}"),
        }
    }

    #[test]
    fn clatch_output_is_c_element() {
        // Fig. 7 with 2 inputs: z = C(x0, x1): set = x0·x1, reset = x0'·x1'.
        let stg = si_stg::generators::clatch(2);
        let opts = SynthesisOptions {
            architecture: Architecture::ExcitationFunction,
            stages: MinimizeStages::stage(0),
            ..Default::default()
        };
        let syn = synthesize(&stg, &opts).unwrap();
        let r = &syn.results[0];
        let (set, reset) = match &r.implementation.kind {
            ImplKind::CLatch { set, reset } => (set[0].clone(), reset[0].clone()),
            other => panic!("expected C-latch, got {other:?}"),
        };
        assert_eq!(set.cube_count(), 1);
        assert_eq!(reset.cube_count(), 1);
        // set = x0 x1 (z literal expanded away), reset = x0' x1'
        assert_eq!(set.literal_count(), 2);
        assert_eq!(reset.literal_count(), 2);
    }

    #[test]
    fn clatch_collapses_to_gc() {
        let stg = si_stg::generators::clatch(2);
        let syn = synthesize(&stg, &SynthesisOptions::default()).unwrap();
        match &syn.results[0].implementation.kind {
            ImplKind::GcLatch { .. } | ImplKind::GatedLatch { .. } => {}
            other => panic!("expected collapsed latch, got {other:?}"),
        }
    }

    #[test]
    fn whole_suite_synthesizes_everywhere() {
        for stg in benchmarks::synthesizable_suite() {
            for arch in [
                Architecture::ComplexGate,
                Architecture::ExcitationFunction,
                Architecture::PerRegion,
            ] {
                let opts = SynthesisOptions {
                    architecture: arch,
                    stages: MinimizeStages::full(),
                    ..Default::default()
                };
                let syn = synthesize(&stg, &opts);
                assert!(
                    syn.is_ok(),
                    "{} under {arch:?}: {:?}",
                    stg.name(),
                    syn.err()
                );
            }
        }
    }

    #[test]
    fn minimization_never_increases_area() {
        for stg in benchmarks::synthesizable_suite() {
            let mut prev = usize::MAX;
            for n in 0..=4 {
                let opts = SynthesisOptions {
                    architecture: Architecture::PerRegion,
                    stages: MinimizeStages::stage(n),
                    ..Default::default()
                };
                let syn = synthesize(&stg, &opts).unwrap();
                assert!(
                    syn.literal_area <= prev,
                    "{}: stage {n} grew area {} -> {}",
                    stg.name(),
                    prev,
                    syn.literal_area
                );
                prev = syn.literal_area;
            }
        }
    }

    #[test]
    fn vme_raw_rejected() {
        let stg = benchmarks::vme_read_raw();
        match synthesize(&stg, &SynthesisOptions::default()) {
            Err(SynthesisError::CscViolationPossible { .. }) => {}
            other => panic!("expected CSC rejection, got {other:?}"),
        }
    }
}
