//! The synthesis session: one pipeline over shared, lazily-cached
//! artifacts.
//!
//! The paper's flow is a pipeline — structural analysis feeding synthesis,
//! CSC resolution and verification — but free functions like
//! [`crate::synthesize`] and `si_verify::verify_circuit` each re-derive the
//! expensive shared artifacts per call: the [`StructuralContext`], the
//! explicit [`ReachabilityGraph`] and the [`ConcurrencyRelation`].
//! [`Engine`] owns one specification and computes each artifact **at most
//! once**, on first use, whatever order the pipeline methods are called in:
//!
//! ```text
//!              Engine::new(&stg).cap(..).shards(..).minimizer(..)
//!                                  │
//!          ┌───────────────────────┼──────────────────────────┐
//!          ▼ (lazy, cached)        ▼ (lazy, cached)           ▼ (lazy, cached)
//!   StructuralContext       ReachabilityGraph + enc     ConcurrencyRelation
//!          │                        │
//!   analyze / synthesize     synthesize_state_based / verify / conformance
//!          └── resolve_csc (si-csc's EngineResolve) uses both ──┘
//! ```
//!
//! The legacy free functions remain as one-shot wrappers over a fresh
//! `Engine`, so both spellings stay bit-identical; pipelines that make more
//! than one call should hold an `Engine` (a synth-then-verify run builds
//! the reachability graph once instead of twice — pinned by a build-count
//! test against [`ReachabilityGraph::build_count`]).
//!
//! Speed-independence verification is provided on the same object by the
//! `EngineVerify` extension trait of `si_verify` (the verifier depends on
//! this crate, not the other way around).

use crate::context::{CscVerdict, StructuralContext, SynthesisError};
use crate::statebased::{synthesize_state_based_on, BaselineError, BaselineFlavor};
use crate::synthesis::{
    synthesize_with_context, Architecture, MinimizeStages, Synthesis, SynthesisOptions,
};
use si_boolean::MinimizerChoice;
use si_petri::{
    ConcurrencyRelation, ReachError, ReachOptions, ReachSummary, ReachabilityGraph, SymbolicReach,
};
use si_stg::{EncodingError, StateEncoding, Stg, SymbolicAnalysis};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Which reachability backend answers the session's state-space queries.
///
/// The explicit explorer is the oracle and the default; the symbolic BDD
/// backend answers cardinality/membership/coding queries without
/// enumerating states, so it keeps working past the explicit state cap on
/// highly concurrent nets. `Auto` tries the explicit explorer first and
/// falls back to the symbolic backend when the explicit run ends
/// inconclusively (cap, deadline, cancellation, memory).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// The explicit interned state graph (the oracle).
    #[default]
    Explicit,
    /// The symbolic BDD reachable set.
    Symbolic,
    /// Explicit first, symbolic on an inconclusive explicit verdict.
    Auto,
}

impl Backend {
    /// Parses the CLI spelling (`explicit`, `symbolic`, `auto`).
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "explicit" => Some(Backend::Explicit),
            "symbolic" => Some(Backend::Symbolic),
            "auto" => Some(Backend::Auto),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Explicit => "explicit",
            Backend::Symbolic => "symbolic",
            Backend::Auto => "auto",
        }
    }
}

/// Summary of the structural analysis (the `analyze()` step of the
/// pipeline): what `sisyn check` reports, as data.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// Surviving structural coding conflicts (Def. 11).
    pub conflicts: usize,
    /// Refinement rounds the context ran (Fig. 12).
    pub refinement_rounds: usize,
    /// Size of the SM-cover.
    pub sm_count: usize,
    /// Total cubes over all place cover functions (Table VIII).
    pub place_cover_cubes: usize,
    /// The structural CSC verdict (Theorems 14/15).
    pub csc: CscVerdict,
}

/// A synthesis session over one STG: builder-configured options, lazily
/// cached shared artifacts, and the whole flow as methods.
///
/// # Examples
///
/// Configure once, then run any part of the pipeline; artifacts are shared
/// between the steps:
///
/// ```
/// use si_core::{BaselineFlavor, Engine};
///
/// let stg = si_stg::generators::clatch(3);
/// let engine = Engine::new(&stg).cap(100_000);
///
/// let report = engine.analyze()?;           // structural only, no graph
/// assert_eq!(report.conflicts, 0);
///
/// let syn = engine.synthesize()?;           // structural flow
/// let base = engine.synthesize_state_based(BaselineFlavor::ExcitationExact)
///     .expect("within cap");                // baseline — builds the graph …
/// assert_eq!(syn.results.len(), base.circuit.implementations.len());
///
/// let rg = engine.reachability()?;          // … which is now cached
/// assert_eq!(rg.state_count(), 16);
/// assert_eq!(engine.reach_build_count(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Engine<'a> {
    stg: &'a Stg,
    options: SynthesisOptions,
    reach: ReachOptions,
    backend: Backend,
    ctx: OnceLock<Result<StructuralContext<'a>, SynthesisError>>,
    rg: OnceLock<Result<ReachabilityGraph, ReachError>>,
    enc: OnceLock<Result<StateEncoding, EncodingError>>,
    sym: OnceLock<Result<SymbolicAnalysis, ReachError>>,
    sym_net: OnceLock<Result<SymbolicReach, ReachError>>,
    conc: OnceLock<ConcurrencyRelation>,
    rg_builds: AtomicUsize,
    summary: Option<ReachSummary>,
    summary_hits: AtomicUsize,
}

impl<'a> Engine<'a> {
    /// A session over `stg` with default options: excitation-function
    /// architecture, full minimization ladder, espresso minimizer, a
    /// 4M-state cap and the sequential reachability engine.
    pub fn new(stg: &'a Stg) -> Self {
        Engine {
            stg,
            options: SynthesisOptions::default(),
            reach: ReachOptions::with_cap(4_000_000),
            backend: Backend::Explicit,
            ctx: OnceLock::new(),
            rg: OnceLock::new(),
            enc: OnceLock::new(),
            sym: OnceLock::new(),
            sym_net: OnceLock::new(),
            conc: OnceLock::new(),
            rg_builds: AtomicUsize::new(0),
            summary: None,
            summary_hits: AtomicUsize::new(0),
        }
    }

    /// Imports a previously exported exploration summary (see
    /// [`Engine::export_reach_summary`]). Headline state-space queries
    /// ([`Engine::spec_state_count`]) answer from it without building any
    /// reachability graph — the cross-session analogue of the in-session
    /// artifact cache. Methods that need the actual graph (verification,
    /// state-based baselines) still build it on first use.
    pub fn reach_summary(mut self, summary: ReachSummary) -> Self {
        self.summary = Some(summary);
        self
    }

    /// Selects the reachability backend for the state-space queries that
    /// either backend can answer ([`Engine::spec_state_count`]); the
    /// synthesis/verification oracles stay on the explicit graph.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the state cap of every reachability-backed method.
    pub fn cap(mut self, cap: usize) -> Self {
        self.reach.budget.cap = cap;
        self
    }

    /// Sets a wall-clock deadline on every state-space traversal the
    /// session runs: past it, explorations wind down gracefully and
    /// surface as [`ReachError::Interrupted`] (graph builds) or partial
    /// verdicts (verification/conformance via `si-verify`).
    pub fn deadline(mut self, at: std::time::Instant) -> Self {
        self.reach.budget.deadline = Some(at);
        self
    }

    /// Sets the deadline `d` from now (see [`Engine::deadline`]).
    pub fn timeout(self, d: std::time::Duration) -> Self {
        self.deadline(std::time::Instant::now() + d)
    }

    /// Attaches a cooperative cancellation token to every state-space
    /// traversal the session runs; cancelling it winds explorations down
    /// gracefully, like [`Engine::deadline`].
    pub fn cancel(mut self, token: si_petri::CancelToken) -> Self {
        self.reach.budget.cancel = Some(token);
        self
    }

    /// Sets the shard-worker count of every state-space traversal the
    /// session runs (see [`ReachOptions::shards`]): the reachability
    /// build, and — through `si-verify`'s `EngineVerify` methods — the
    /// speed-independence violation search and the conformance product
    /// exploration, which all ride the generic explorers of
    /// `si_petri::space`.
    pub fn shards(mut self, shards: usize) -> Self {
        self.reach = self.reach.shards(shards);
        self
    }

    /// Replaces the whole reachability option set.
    pub fn reach(mut self, reach: ReachOptions) -> Self {
        self.reach = reach;
        self
    }

    /// Selects the two-level minimizer backend.
    pub fn minimizer(mut self, minimizer: MinimizerChoice) -> Self {
        self.options.minimizer = minimizer;
        self
    }

    /// Selects the implementation architecture.
    pub fn architecture(mut self, architecture: Architecture) -> Self {
        self.options.architecture = architecture;
        self
    }

    /// Selects the minimization stages.
    pub fn stages(mut self, stages: MinimizeStages) -> Self {
        self.options.stages = stages;
        self
    }

    /// Replaces the whole synthesis option set.
    pub fn options(mut self, options: SynthesisOptions) -> Self {
        self.options = options;
        self
    }

    /// The specification this session is bound to.
    pub fn stg(&self) -> &'a Stg {
        self.stg
    }

    /// The configured reachability options.
    pub fn reach_options(&self) -> ReachOptions {
        self.reach.clone()
    }

    /// The configured synthesis options.
    pub fn synthesis_options(&self) -> &SynthesisOptions {
        &self.options
    }

    /// The cached structural context (built on first use).
    ///
    /// # Errors
    ///
    /// The construction error of [`StructuralContext::build`], replayed on
    /// every call once it failed.
    pub fn context(&self) -> Result<&StructuralContext<'a>, SynthesisError> {
        self.ctx
            .get_or_init(|| {
                si_obs::counter_inc("engine.context_builds");
                StructuralContext::build(self.stg)
            })
            .as_ref()
            .map_err(Clone::clone)
    }

    /// The cached explicit reachability graph (built on first use with the
    /// configured cap and shard count).
    ///
    /// # Errors
    ///
    /// The construction error of [`ReachabilityGraph::build_with`],
    /// replayed on every call once it failed.
    pub fn reachability(&self) -> Result<&ReachabilityGraph, ReachError> {
        self.rg
            .get_or_init(|| {
                si_obs::counter_inc("engine.reach_builds");
                let built = ReachabilityGraph::build_with(self.stg.net(), self.reach.clone());
                if built.is_ok() {
                    self.rg_builds.fetch_add(1, Ordering::Relaxed);
                }
                built
            })
            .as_ref()
            .map_err(Clone::clone)
    }

    /// The cached encoding computation (built on first use, inconsistency
    /// kept as a value so each caller can map it to its own error type).
    fn encoding_entry(&self) -> Result<&Result<StateEncoding, EncodingError>, ReachError> {
        let rg = self.reachability()?;
        Ok(self
            .enc
            .get_or_init(|| StateEncoding::compute(self.stg, rg)))
    }

    /// The cached state encoding over [`Engine::reachability`].
    ///
    /// # Errors
    ///
    /// Propagates the reachability error.
    ///
    /// # Panics
    ///
    /// Panics when the STG is behaviourally inconsistent (verification
    /// callers only pass synthesizable inputs, which never are; the
    /// state-based baseline reports inconsistency as a value instead).
    pub fn encoding(&self) -> Result<&StateEncoding, ReachError> {
        Ok(self.encoding_entry()?.as_ref().expect("consistent STG"))
    }

    /// The configured backend choice.
    pub fn backend_choice(&self) -> Backend {
        self.backend
    }

    /// The cached symbolic analysis (built on first use under the
    /// session's soft budget limits — the explicit state cap does not
    /// apply to the symbolic backend).
    ///
    /// # Errors
    ///
    /// [`ReachError::NotSafe`] from the symbolic build, or
    /// [`ReachError::Interrupted`] when a deadline/cancellation/memory
    /// limit stopped a symbolic fixpoint — the same tagged inconclusive
    /// verdict the explicit explorer reports, replayed on every call.
    pub fn symbolic(&self) -> Result<&SymbolicAnalysis, ReachError> {
        self.sym
            .get_or_init(|| {
                si_obs::counter_inc("engine.symbolic_builds");
                let sym = SymbolicAnalysis::build_with(self.stg, &self.reach.budget)?;
                match sym.interrupt() {
                    Some(i) => Err(ReachError::Interrupted {
                        reason: i.reason,
                        states_explored: i.states_explored,
                        elapsed_ms: i.elapsed.as_millis() as u64,
                    }),
                    None => Ok(sym),
                }
            })
            .as_ref()
            .map_err(Clone::clone)
    }

    /// The cached net-level symbolic reachable set (no signal coding
    /// layer — the cheap artifact behind [`Engine::spec_state_count`];
    /// [`Engine::symbolic`] pays the per-signal closures on top and is
    /// only built when a coding query actually needs them).
    ///
    /// # Errors
    ///
    /// As [`Engine::symbolic`].
    pub fn symbolic_reach(&self) -> Result<&SymbolicReach, ReachError> {
        self.sym_net
            .get_or_init(|| {
                si_obs::counter_inc("engine.symbolic_builds");
                let sym = SymbolicReach::build_with(self.stg.net(), &self.reach.budget)?;
                match sym.interrupt() {
                    Some(i) => Err(ReachError::Interrupted {
                        reason: i.reason,
                        states_explored: i.states_explored,
                        elapsed_ms: i.elapsed.as_millis() as u64,
                    }),
                    None => Ok(sym),
                }
            })
            .as_ref()
            .map_err(Clone::clone)
    }

    /// Reachable-state count of the specification, answered by the
    /// configured [`Backend`]: the explicit graph, the symbolic reachable
    /// set, or (`Auto`) the explicit graph with a symbolic fallback when
    /// the explicit run ends inconclusively.
    ///
    /// # Errors
    ///
    /// The selected backend's build error; under `Auto` a conclusive
    /// explicit error (e.g. [`ReachError::NotSafe`]) propagates without
    /// consulting the symbolic backend.
    pub fn spec_state_count(&self) -> Result<u128, ReachError> {
        if let Some(summary) = &self.summary {
            self.summary_hits.fetch_add(1, Ordering::Relaxed);
            si_obs::counter_inc("engine.summary_hits");
            return Ok(summary.states as u128);
        }
        let symbolic_count = || {
            // The coding-layer analysis subsumes the net-level set; use
            // whichever is already cached before building anything.
            if let Some(Ok(sym)) = self.sym.get() {
                return Ok(sym.state_count());
            }
            Ok(self.symbolic_reach()?.state_count())
        };
        match self.backend {
            Backend::Explicit => Ok(self.reachability()?.state_count() as u128),
            Backend::Symbolic => symbolic_count(),
            Backend::Auto => match self.reachability() {
                Ok(rg) => Ok(rg.state_count() as u128),
                Err(e) if e.is_inconclusive() => symbolic_count(),
                Err(e) => Err(e),
            },
        }
    }

    /// The cached structural concurrency relation (§V-A fixpoint).
    pub fn concurrency(&self) -> &ConcurrencyRelation {
        self.conc
            .get_or_init(|| ConcurrencyRelation::compute(self.stg.net()))
    }

    /// How many times **this session** actually constructed a reachability
    /// graph (0 until a reachability-backed method runs, then 1 forever —
    /// the artifact-cache guarantee; the process-wide analog is
    /// [`ReachabilityGraph::build_count`]).
    pub fn reach_build_count(&self) -> usize {
        self.rg_builds.load(Ordering::Relaxed)
    }

    /// How many queries this session answered from an imported
    /// [`ReachSummary`] instead of a reachability build (0 unless
    /// [`Engine::reach_summary`] was configured) — the cache-stat counter
    /// the serving layer surfaces as `summary_hits`.
    pub fn summary_hit_count(&self) -> usize {
        self.summary_hits.load(Ordering::Relaxed)
    }

    /// Exports the summary of this session's exploration for reuse by a
    /// later session ([`Engine::reach_summary`]): `Some` once the explicit
    /// graph was built conclusively, `None` otherwise (inconclusive and
    /// failed builds have nothing stable to cache).
    pub fn export_reach_summary(&self) -> Option<ReachSummary> {
        match self.rg.get() {
            Some(Ok(rg)) => Some(ReachSummary::of(rg)),
            _ => None,
        }
    }

    /// Structural analysis: conflicts, refinement effort, SM-cover size
    /// and the CSC verdict — without building any state graph.
    ///
    /// # Errors
    ///
    /// Context precondition failures ([`SynthesisError::Inconsistent`],
    /// [`SynthesisError::NotSmCoverable`]). An unresolved CSC verdict is
    /// **data** here, not an error.
    pub fn analyze(&self) -> Result<Analysis, SynthesisError> {
        let ctx = self.context()?;
        Ok(Analysis {
            conflicts: ctx.conflicts().len(),
            refinement_rounds: ctx.refinement_rounds,
            sm_count: ctx.sm_cover.len(),
            place_cover_cubes: ctx.total_cubes(),
            csc: ctx.csc_verdict(),
        })
    }

    /// The structural synthesis flow (§VIII) under the session options,
    /// over the cached context.
    ///
    /// # Errors
    ///
    /// As [`crate::synthesize`].
    pub fn synthesize(&self) -> Result<Synthesis, SynthesisError> {
        self.synthesize_with(&self.options)
    }

    /// Like [`Engine::synthesize`] with one-off options (the cached
    /// context is shared across architecture/stage sweeps).
    ///
    /// # Errors
    ///
    /// As [`crate::synthesize`].
    pub fn synthesize_with(&self, options: &SynthesisOptions) -> Result<Synthesis, SynthesisError> {
        synthesize_with_context(self.context()?, options)
    }

    /// The state-based baseline (§IX-B/C) over the cached reachability
    /// graph, with the session's minimizer backend.
    ///
    /// # Errors
    ///
    /// As [`crate::synthesize_state_based`]; a cap overflow surfaces as
    /// [`BaselineError::StateExplosion`].
    pub fn synthesize_state_based(
        &self,
        flavor: BaselineFlavor,
    ) -> Result<crate::statebased::BaselineSynthesis, BaselineError> {
        let rg = self.reachability().map_err(BaselineError::StateExplosion)?;
        let enc = self
            .encoding_entry()
            .map_err(BaselineError::StateExplosion)?
            .as_ref()
            .map_err(|e| BaselineError::Inconsistent(e.clone()))?;
        synthesize_state_based_on(self.stg, flavor, rg, enc, self.options.minimizer)
    }
}
