//! State-based baseline synthesis (§IX-B/C comparators).
//!
//! This is the conventional flow of SIS / ASSASSIN / SYN / FORCAGE that the
//! paper measures against: build the **entire reachability graph**, extract
//! exact regions and next-state functions from the binary codes, and run
//! two-level minimization on explicit minterm sets. Functionally it produces
//! the same class of circuits as the structural flow; computationally it
//! pays the state-explosion price — which is exactly what Tables VI/VII
//! quantify.

use crate::circuit::{Circuit, ImplKind, SignalImplementation};
use si_boolean::{Bits, Cover, Cube, Minimizer, MinimizerChoice};
use si_petri::{ReachError, ReachOptions, ReachabilityGraph, StateId};
use si_stg::{
    codes_of, CodingAnalysis, EncodingError, SignalId, SignalRegions, StateEncoding, Stg,
};

/// Which historical tool family the baseline mimics.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BaselineFlavor {
    /// One complex gate per signal from the exact next-state function
    /// (SIS-style, no architectural constraints beyond eq. 1).
    ComplexGateExact,
    /// Set/reset covers for a C-latch, minimized against the exact region
    /// codes with the monotonicity filter (SYN / FORCAGE style).
    ExcitationExact,
}

/// Why the baseline failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BaselineError {
    /// The reachability graph exploded past the cap — the regime where
    /// only the structural flow survives.
    StateExplosion(ReachError),
    /// The STG is behaviourally inconsistent.
    Inconsistent(EncodingError),
    /// A CSC conflict makes the next-state functions ill-defined.
    CscConflict,
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::StateExplosion(e) => write!(f, "state-based flow failed: {e}"),
            BaselineError::Inconsistent(e) => write!(f, "inconsistent STG: {e}"),
            BaselineError::CscConflict => write!(f, "CSC conflict"),
        }
    }
}

impl std::error::Error for BaselineError {}

/// Result of a baseline run.
#[derive(Clone, Debug)]
pub struct BaselineSynthesis {
    /// The synthesized circuit.
    pub circuit: Circuit,
    /// Area in the same normalized literal units as the structural flow.
    pub literal_area: usize,
    /// Number of reachable markings that had to be enumerated.
    pub states: usize,
}

fn minterms(codes: &[Bits]) -> Vec<Cube> {
    codes.iter().map(Cube::from_vertex).collect()
}

/// Runs the state-based baseline with an explicit state cap.
///
/// # Errors
///
/// [`BaselineError::StateExplosion`] when the reachability graph exceeds
/// `cap` markings — the condition Tables VI/VII report as "memory out".
pub fn synthesize_state_based(
    stg: &Stg,
    flavor: BaselineFlavor,
    cap: usize,
) -> Result<BaselineSynthesis, BaselineError> {
    synthesize_state_based_with(stg, flavor, ReachOptions::with_cap(cap))
}

/// Like [`synthesize_state_based`] but with explicit [`ReachOptions`]:
/// `reach.shards > 1` builds the reachability graph (the dominant cost of
/// the baseline on the scalable benchmark families) on the sharded
/// multi-threaded engine. The synthesized result is identical either way —
/// the engines produce the same graph, state numbering included.
///
/// # Errors
///
/// Same contract as [`synthesize_state_based`].
pub fn synthesize_state_based_with(
    stg: &Stg,
    flavor: BaselineFlavor,
    reach: ReachOptions,
) -> Result<BaselineSynthesis, BaselineError> {
    crate::Engine::new(stg)
        .reach(reach)
        .synthesize_state_based(flavor)
}

/// The baseline over a **prebuilt** reachability graph and state encoding
/// — the form the [`crate::Engine`] artifact cache calls so a
/// baseline-then-verify pipeline computes both exactly once — with an
/// explicit two-level minimizer backend for the exact region covers.
///
/// # Errors
///
/// [`BaselineError::CscConflict`] as in [`synthesize_state_based`]; state
/// explosion and inconsistency cannot occur here (the caller already
/// built the graph and the encoding).
pub fn synthesize_state_based_on(
    stg: &Stg,
    flavor: BaselineFlavor,
    rg: &ReachabilityGraph,
    enc: &StateEncoding,
    minimizer: MinimizerChoice,
) -> Result<BaselineSynthesis, BaselineError> {
    let backend = minimizer.backend();
    let coding = CodingAnalysis::compute(stg, rg, enc);
    if !coding.has_csc() {
        return Err(BaselineError::CscConflict);
    }
    let nsig = stg.signal_count();
    let mut implementations = Vec::new();

    for signal in stg.synthesized_signals() {
        let regions = SignalRegions::compute(stg, rg, signal);
        let ger_rise = codes_of(enc, &regions.ger_rise);
        let ger_fall = codes_of(enc, &regions.ger_fall);
        let gqr_one = codes_of(enc, &regions.gqr_one);
        let gqr_zero = codes_of(enc, &regions.gqr_zero);

        let kind = match flavor {
            BaselineFlavor::ComplexGateExact => {
                let mut on: Vec<Bits> = ger_rise.clone();
                on.extend(gqr_one.iter().cloned());
                let mut off: Vec<Bits> = ger_fall.clone();
                off.extend(gqr_zero.iter().cloned());
                let on_cover = Cover::from_cubes(nsig, minterms(&on));
                let off_cover = Cover::from_cubes(nsig, minterms(&off));
                let min = crate::synthesis::observed_minimize(
                    backend,
                    &on_cover,
                    &Cover::empty(nsig),
                    &off_cover,
                )
                .cover;
                ImplKind::Combinational {
                    cover: min,
                    inverted: false,
                }
            }
            BaselineFlavor::ExcitationExact => {
                let set = region_cover(
                    stg, rg, enc, signal, backend, &ger_rise, &ger_fall, &gqr_zero, true,
                );
                let reset = region_cover(
                    stg, rg, enc, signal, backend, &ger_fall, &ger_rise, &gqr_one, false,
                );
                // Complete-cover detection was standard practice in the
                // era tools (Appendix B cites [5]): when the set cover
                // already contains all quiescent-one codes the latch is
                // dropped.
                let covers_all =
                    |cover: &Cover, codes: &[Bits]| codes.iter().all(|c| cover.contains_vertex(c));
                if covers_all(&set, &gqr_one) {
                    ImplKind::Combinational {
                        cover: set,
                        inverted: false,
                    }
                } else if covers_all(&reset, &gqr_zero) {
                    ImplKind::Combinational {
                        cover: reset,
                        inverted: true,
                    }
                } else {
                    ImplKind::CLatch {
                        set: vec![set],
                        reset: vec![reset],
                    }
                }
            }
        };
        implementations.push(SignalImplementation { signal, kind });
    }

    let circuit = Circuit { implementations };
    Ok(BaselineSynthesis {
        literal_area: circuit.literal_area(),
        circuit,
        states: rg.state_count(),
    })
}

/// Exact set/reset cover: minterms of the own GER expanded against the
/// exact off codes, then filtered to stay monotonic on the RG edges
/// (Property 1 — the state-based analog of the paper's Property 16).
#[allow(clippy::too_many_arguments)]
fn region_cover(
    stg: &Stg,
    rg: &ReachabilityGraph,
    enc: &StateEncoding,
    signal: SignalId,
    backend: &dyn Minimizer,
    own_ger: &[Bits],
    opp_ger: &[Bits],
    opp_gqr: &[Bits],
    is_set: bool,
) -> Cover {
    let nsig = stg.signal_count();
    let mut off: Vec<Bits> = opp_ger.to_vec();
    off.extend(opp_gqr.iter().cloned());
    let off_cover = Cover::from_cubes(nsig, minterms(&off));
    let on_cover = Cover::from_cubes(nsig, minterms(own_ger));
    let mut cover =
        crate::synthesis::observed_minimize(backend, &on_cover, &Cover::empty(nsig), &off_cover)
            .cover;

    // Monotonicity filter: while some RG edge shows a re-rise (signal high,
    // cover 0→1 for set; low for reset) or a pre-excitation fall, shrink
    // the cover by cutting the offending target minterm out of the cube.
    loop {
        let mut offending: Option<Bits> = None;
        'scan: for s in rg.states() {
            for &(_, d) in rg.successors(s) {
                let (vs, vd) = (enc.value(s, signal), enc.value(d, signal));
                let phase = if is_set { vs && vd } else { !vs && !vd };
                if phase
                    && !cover.contains_vertex(enc.code(s))
                    && cover.contains_vertex(enc.code(d))
                {
                    offending = Some(enc.code(d).clone());
                    break 'scan;
                }
                let pre_phase = if is_set { !vs && !vd } else { vs && vd };
                if pre_phase
                    && cover.contains_vertex(enc.code(s))
                    && !cover.contains_vertex(enc.code(d))
                {
                    offending = Some(enc.code(s).clone());
                    break 'scan;
                }
            }
        }
        let Some(bad) = offending else { break };
        let bad_cube = Cube::from_vertex(&bad);
        cover = cover.sharp(&Cover::from_cube(bad_cube));
        // Never cut the mandatory excitation codes.
        debug_assert!(own_ger.iter().all(|c| {
            cover.contains_vertex(c) || {
                // re-add if a mandatory code was cut (cannot happen: GER
                // codes are never monotonicity offenders)
                false
            }
        }));
    }
    cover
}

/// Behavioural-oracle state ids of a region (used by tests/benches).
pub fn region_states(region: &si_stg::StateSet) -> Vec<StateId> {
    region.iter_ones().map(|i| StateId(i as u32)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_stg::benchmarks;

    #[test]
    fn baseline_synthesizes_the_suite() {
        for stg in benchmarks::synthesizable_suite() {
            for flavor in [
                BaselineFlavor::ComplexGateExact,
                BaselineFlavor::ExcitationExact,
            ] {
                let r = synthesize_state_based(&stg, flavor, 1_000_000);
                assert!(r.is_ok(), "{} {flavor:?}: {:?}", stg.name(), r.err());
                let syn = r.unwrap();
                assert!(syn.literal_area > 0);
                assert!(syn.states > 0);
            }
        }
    }

    #[test]
    fn state_explosion_reported() {
        let stg = si_stg::generators::clatch(12); // 2^13 states
        let err = synthesize_state_based(&stg, BaselineFlavor::ComplexGateExact, 1000).unwrap_err();
        assert!(matches!(err, BaselineError::StateExplosion(_)));
    }

    #[test]
    fn csc_conflict_rejected() {
        let stg = benchmarks::vme_read_raw();
        let err =
            synthesize_state_based(&stg, BaselineFlavor::ComplexGateExact, 100_000).unwrap_err();
        assert_eq!(err, BaselineError::CscConflict);
    }

    #[test]
    fn clatch_baseline_matches_structural_shape() {
        let stg = si_stg::generators::clatch(2);
        let syn = synthesize_state_based(&stg, BaselineFlavor::ExcitationExact, 100_000).unwrap();
        match &syn.circuit.implementations[0].kind {
            ImplKind::CLatch { set, reset } => {
                // exact covers of the C-element: x0·x1 and x0'·x1'
                assert_eq!(set[0].literal_count(), 2);
                assert_eq!(reset[0].literal_count(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
