//! CSC resolution by state-signal insertion.
//!
//! When the structural analysis cannot establish complete state coding
//! (§VI: "by adding state signals, the covers can always be reduced to
//! nonintersecting" — the procedure itself is deferred to the companion
//! paper \[27\]), synthesis rejects the STG. This module implements the
//! missing piece: a search over insertion plans for one internal signal
//! `cscN`:
//!
//! * `cscN+` and `cscN-` are inserted by **splitting** two simple places
//!   (the transition pairs they connect become `t → cscN± → u`);
//! * optionally `cscN+` additionally **waits** for another transition
//!   (a join arc, possibly initially marked) — the shape needed by e.g.
//!   the VME bus controller, where the rising edge must also wait for the
//!   release phase to finish;
//! * only synthesized (non-input) transitions may be delayed — inserting
//!   state signals in front of environment transitions would change the
//!   interface contract (input properness).
//!
//! Candidates are pruned with the *structural* machinery (consistency +
//! Theorems 14/15); the single surviving candidate is accepted only after
//! the behavioural oracle confirms liveness, safeness, consistency, CSC
//! and output semimodularity.

use crate::context::{CscVerdict, StructuralContext};
use si_petri::{PlaceId, ReachOptions, ReachabilityGraph, TransId};
use si_stg::{
    semimodularity_violations, CodingAnalysis, Direction, SignalKind, StateEncoding, Stg,
};

/// One candidate insertion of a state signal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InsertionPlan {
    /// The simple place split by the rising transition.
    pub rise_split: PlaceId,
    /// The simple place split by the falling transition.
    pub fall_split: PlaceId,
    /// Extra preset arcs of the rising transition: `(producer, marked)`.
    pub rise_waits: Vec<(TransId, bool)>,
}

/// Applies an insertion plan, producing a new STG with one more internal
/// signal named `name`.
///
/// # Panics
///
/// Panics if a split place is not simple (one producer, one consumer) or
/// is initially marked.
pub fn apply_insertion(stg: &Stg, name: &str, plan: &InsertionPlan) -> Stg {
    let net = stg.net();
    for &p in [&plan.rise_split, &plan.fall_split] {
        assert_eq!(net.pre_p(p).len(), 1, "split place must be simple");
        assert_eq!(net.post_p(p).len(), 1, "split place must be simple");
        assert!(
            !net.initial_marking().get(p.index()),
            "split place must be unmarked"
        );
    }
    let mut b = Stg::builder(format!("{}_{}", stg.name(), name));
    // Signals.
    let mut sig_map = Vec::new();
    for s in stg.signals() {
        sig_map.push(b.add_signal(stg.signal_name(s), stg.signal_kind(s)));
    }
    let x = b.add_signal(name, SignalKind::Internal);
    // Transitions (same order ⇒ same ids).
    let mut t_map = Vec::new();
    for t in net.transitions() {
        let l = stg.label(t);
        t_map.push(b.add_transition_with_instance(
            sig_map[l.signal.index()],
            l.direction,
            l.instance,
        ));
    }
    let xp = b.add_transition(x, Direction::Rise);
    let xm = b.add_transition(x, Direction::Fall);

    // Places and arcs; split places are re-routed through x+/x-.
    for p in net.places() {
        if p == plan.rise_split || p == plan.fall_split {
            let xt = if p == plan.rise_split { xp } else { xm };
            let producer = t_map[net.pre_p(p)[0].index()];
            let consumer = t_map[net.post_p(p)[0].index()];
            b.arc(producer, xt);
            b.arc(xt, consumer);
        } else {
            let np = b.add_place(net.place_name(p), net.initial_marking().get(p.index()));
            for &t in net.pre_p(p) {
                b.arc_tp(t_map[t.index()], np);
            }
            for &t in net.post_p(p) {
                b.arc_pt(np, t_map[t.index()]);
            }
        }
    }
    for &(producer, marked) in &plan.rise_waits {
        let wp = b.add_place(format!("<wait_{}>", producer.index()), marked);
        b.arc_tp(t_map[producer.index()], wp);
        b.arc_pt(wp, xp);
    }
    b.build()
}

/// Does the oracle accept the mutated STG completely?
fn oracle_accepts(stg: &Stg, reach: ReachOptions) -> bool {
    let Ok(rg) = ReachabilityGraph::build_with(stg.net(), reach) else {
        return false;
    };
    if !rg.is_live(stg.net()) {
        return false;
    }
    let Ok(enc) = StateEncoding::compute(stg, &rg) else {
        return false;
    };
    let coding = CodingAnalysis::compute(stg, &rg, &enc);
    coding.has_csc() && semimodularity_violations(stg, &rg).is_empty()
}

/// Searches for a single-signal insertion that resolves the CSC conflicts
/// of `stg`. Returns the repaired STG and the plan, or `None` when no
/// candidate within `budget` works.
///
/// When the input already satisfies CSC it is returned unchanged together
/// with the no-op sentinel plan (`rise_split == fall_split == PlaceId(0)`,
/// no waits — impossible for a real insertion, whose split places always
/// differ).
///
/// The search space: all ordered pairs of distinct simple places whose
/// consumers are synthesized transitions, first without wait arcs, then
/// with one wait arc from every transition (marked and unmarked variants).
pub fn resolve_csc(stg: &Stg, budget: usize) -> Option<(Stg, InsertionPlan)> {
    resolve_csc_with(stg, budget, ReachOptions::with_cap(1_000_000))
}

/// Like [`resolve_csc`] but with explicit [`ReachOptions`] for the
/// behavioural acceptance oracle: `reach.cap` bounds the candidate's state
/// space and `reach.shards > 1` runs the oracle's reachability build on
/// the sharded multi-threaded engine.
pub fn resolve_csc_with(
    stg: &Stg,
    budget: usize,
    reach: ReachOptions,
) -> Option<(Stg, InsertionPlan)> {
    crate::Engine::new(stg).reach(reach).resolve_csc(budget)
}

/// Like [`resolve_csc_with`] but reusing an already-built
/// [`StructuralContext`] of `stg` for the no-conflict fast path — the form
/// the [`crate::Engine`] calls so a check-then-resolve pipeline analyzes
/// the input only once. `ctx`, when given, **must** belong to `stg`.
pub(crate) fn resolve_csc_in(
    stg: &Stg,
    budget: usize,
    reach: ReachOptions,
    ctx: Option<&StructuralContext<'_>>,
) -> Option<(Stg, InsertionPlan)> {
    if let Some(ctx) = ctx {
        if !matches!(ctx.csc_verdict(), CscVerdict::Unknown { .. }) {
            return Some((
                stg.clone(),
                InsertionPlan {
                    rise_split: PlaceId(0),
                    fall_split: PlaceId(0),
                    rise_waits: Vec::new(),
                },
            ));
        }
    }
    let net = stg.net();
    let splittable: Vec<PlaceId> = net
        .places()
        .filter(|&p| {
            net.pre_p(p).len() == 1
                && net.post_p(p).len() == 1
                && !net.initial_marking().get(p.index())
                && stg
                    .signal_kind(stg.signal_of(net.post_p(p)[0]))
                    .is_synthesized()
        })
        .collect();

    let mut tried = 0usize;
    // Pass 1: plain arc splits. Pass 2: with one wait arc.
    for with_waits in [false, true] {
        for &rise in &splittable {
            for &fall in &splittable {
                if rise == fall {
                    continue;
                }
                let wait_options: Vec<Vec<(TransId, bool)>> = if with_waits {
                    net.transitions()
                        .flat_map(|t| [vec![(t, true)], vec![(t, false)]])
                        .collect()
                } else {
                    vec![Vec::new()]
                };
                for rise_waits in wait_options {
                    // A wait from the transition x+ precedes is cyclic junk.
                    if rise_waits
                        .iter()
                        .any(|&(t, _)| t == net.post_p(rise)[0] || t == net.pre_p(rise)[0])
                    {
                        continue;
                    }
                    tried += 1;
                    if tried > budget {
                        return None;
                    }
                    let plan = InsertionPlan {
                        rise_split: rise,
                        fall_split: fall,
                        rise_waits,
                    };
                    let candidate = apply_insertion(stg, "csc0", &plan);
                    // Structural pruning.
                    let Ok(ctx) = StructuralContext::build(&candidate) else {
                        continue;
                    };
                    if matches!(ctx.csc_verdict(), CscVerdict::Unknown { .. }) {
                        continue;
                    }
                    // Behavioural acceptance.
                    if oracle_accepts(&candidate, reach) {
                        return Some((candidate, plan));
                    }
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesis::{synthesize, SynthesisOptions};

    #[test]
    fn vme_read_conflict_is_resolved_automatically() {
        let raw = si_stg::benchmarks::vme_read_raw();
        let (fixed, plan) = resolve_csc(&raw, 50_000).expect("resolvable");
        assert_eq!(fixed.signal_count(), raw.signal_count() + 1);
        // The repaired STG synthesizes and verifies.
        let syn = synthesize(&fixed, &SynthesisOptions::default()).expect("synthesizable");
        assert!(syn.literal_area > 0);
        let _ = plan;
    }

    #[test]
    fn csc_clean_stg_returned_unchanged() {
        let stg = si_stg::benchmarks::burst2();
        let (same, plan) = resolve_csc(&stg, 10).expect("already clean");
        assert_eq!(same.signal_count(), stg.signal_count());
        assert!(plan.rise_waits.is_empty());
    }

    #[test]
    fn apply_insertion_shapes_the_net() {
        let stg = si_stg::benchmarks::half_handshake();
        let net = stg.net();
        // split <a+,b+> for x+ and <a-,b-> for x-.
        let ap = stg.transition_by_display("a+").unwrap();
        let am = stg.transition_by_display("a-").unwrap();
        let rise = net.post_t(ap)[0];
        let fall = net.post_t(am)[0];
        let plan = InsertionPlan {
            rise_split: rise,
            fall_split: fall,
            rise_waits: Vec::new(),
        };
        let out = apply_insertion(&stg, "x", &plan);
        assert_eq!(out.signal_count(), stg.signal_count() + 1);
        assert_eq!(
            out.net().transition_count(),
            stg.net().transition_count() + 2
        );
        // behaviour stays live and consistent
        assert!(oracle_accepts(&out, ReachOptions::with_cap(10_000)));
    }
}
