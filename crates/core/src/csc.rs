//! CSC resolution surface of the core crate.
//!
//! The actual resolution subsystem lives in the dedicated `si-csc` crate
//! (conflict-core extraction, incremental re-analysis, parallel candidate
//! search); this module keeps the core-side surface thin:
//!
//! * the STG surgery ([`InsertionPlan`], [`apply_insertion`]) is re-exported
//!   from `si_stg::edit`, where it moved so both `si-core` and `si-csc` can
//!   share it;
//! * [`no_conflict_resolution`] implements the no-op fast path every
//!   resolver spells the same way: an STG that already satisfies CSC is
//!   returned unchanged with the sentinel plan.
//!
//! `resolve_csc` / `resolve_csc_with` themselves are provided by `si-csc`
//! (and re-exported from the `sisyn` umbrella crate): resolution needs the
//! structural context *and* drives whole `Engine` sessions per candidate,
//! so it sits above this crate in the dependency order — the same pattern
//! as speed-independence verification (`si-verify`'s `EngineVerify`).

use crate::context::{CscVerdict, StructuralContext};
use si_petri::PlaceId;
use si_stg::Stg;

pub use si_stg::edit::{apply_insertion, apply_insertion_mapped, InsertionMap, InsertionPlan};

/// The sentinel plan returned when the input already satisfies CSC:
/// `rise_split == fall_split == PlaceId(0)`, no waits — impossible for a
/// real insertion, whose split places always differ.
pub fn sentinel_plan() -> InsertionPlan {
    InsertionPlan {
        rise_split: PlaceId(0),
        fall_split: PlaceId(0),
        rise_waits: Vec::new(),
    }
}

/// The no-conflict fast path of CSC resolution: when `ctx` (a context of
/// `stg`) proves CSC structurally, the STG is returned unchanged together
/// with the [`sentinel_plan`]. Returns `None` when state-signal insertion
/// is actually required.
pub fn no_conflict_resolution(
    stg: &Stg,
    ctx: &StructuralContext<'_>,
) -> Option<(Stg, InsertionPlan)> {
    if matches!(ctx.csc_verdict(), CscVerdict::Unknown { .. }) {
        None
    } else {
        Some((stg.clone(), sentinel_plan()))
    }
}
