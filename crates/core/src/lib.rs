//! Structural synthesis of speed-independent circuits.
//!
//! The primary contribution of the reproduced paper: a complete synthesis
//! flow from free-choice (or SM-coverable) signal transition graphs to
//! hazard-free speed-independent circuits, with **every step performed on
//! the structure of the STG** — no reachability graph is ever built:
//!
//! 1. consistency (Fig. 9, via `si-stg`);
//! 2. marked-region cover cubes ([`PlaceCubes`], Lemma 10);
//! 3. signal-region approximations + SM-cover refinement
//!    ([`StructuralContext`], §VI–§VII, Theorems 14/15);
//! 4. implementability checks ([`checks`], eq. 2 + Property 16);
//! 5. cover synthesis and minimization ([`synthesize`], §VIII + Appendix);
//! 6. realization in the three architectures of Fig. 3 ([`circuit`]).
//!
//! A conventional state-based flow ([`statebased`]) is included as the
//! baseline the paper compares against (SIS / ASSASSIN / SYN / FORCAGE
//! stand-in).
//!
//! The whole flow is exposed as methods on one session object,
//! [`Engine`], which lazily caches the shared artifacts (structural
//! context, reachability graph, concurrency relation); the free functions
//! below are one-shot wrappers over it.
//!
//! # Examples
//!
//! ```
//! use si_core::{Engine, SynthesisOptions};
//!
//! let stg = si_stg::generators::clatch(2);
//! let syn = Engine::new(&stg).synthesize()?;
//! assert_eq!(syn.results.len(), 1); // one output: the C-element
//!
//! // Equivalent one-shot spelling:
//! let same = si_core::synthesize(&stg, &SynthesisOptions::default())?;
//! assert_eq!(syn.circuit, same.circuit);
//! # Ok::<(), si_core::SynthesisError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod artifact;
pub mod checks;
pub mod circuit;
pub mod context;
pub mod csc;
pub mod cubes;
pub mod engine;
pub mod netlist;
pub mod statebased;
pub mod synthesis;
pub mod techmap;

pub use artifact::{clusters_from_wire, clusters_to_wire, signal_fingerprint};
pub use circuit::{Circuit, ImplKind, SignalImplementation};
pub use context::{
    CodingConflict, CscVerdict, RefinementTrace, SignalCovers, StructuralContext, SynthesisError,
};
pub use csc::{apply_insertion, no_conflict_resolution, sentinel_plan, InsertionPlan};
pub use cubes::PlaceCubes;
pub use engine::{Analysis, Backend, Engine};
pub use netlist::to_verilog;
pub use statebased::{
    synthesize_state_based, synthesize_state_based_on, synthesize_state_based_with, BaselineError,
    BaselineFlavor, BaselineSynthesis,
};
pub use synthesis::{
    derive_clusters, realize_clusters, revalidate_clusters, synthesize, synthesize_signal,
    synthesize_with_context, Architecture, MinimizeStages, SignalClusters, SignalResult, Synthesis,
    SynthesisOptions,
};
pub use techmap::{map_circuit, CellUse, MappedCircuit};
