//! Cover cubes for marked regions (§V-D, Lemma 10).
//!
//! Every place `p` gets the smallest cube covering the binary codes of all
//! markings in `MR(p)`:
//!
//! * a signal concurrent to `p` contributes a don't-care;
//! * a non-concurrent signal contributes the literal implied by the
//!   interleaving of `p` between an adjacent pair of its transitions
//!   (Property 9 guarantees the value is well defined in consistent STGs).
//!
//! If the structural interleave analysis cannot determine a value (or —
//! impossible behaviourally, but possible for a conservative analysis —
//! finds both directions) the literal is dropped, which only *enlarges* the
//! cube: cover cubes stay conservative over-approximations, exactly the
//! safety direction the paper relies on.

use si_boolean::{Bits, Cube};
use si_petri::TransId;
use si_stg::{interleaved_nodes, Stg, StgAnalysis};
use std::collections::HashMap;

/// The cover cubes of all places plus the interleave cache used to build
/// them (reused for the QPS domains).
#[derive(Clone, Debug)]
pub struct PlaceCubes {
    /// `cube[p]` — cover cube of `MR(p)` over the signal space.
    pub cubes: Vec<Cube>,
    /// Interleaved places per adjacent transition pair `(t, t')`.
    pub pair_places: HashMap<(TransId, TransId), Bits>,
    /// `(place, signal)` pairs whose literal could not be determined
    /// (left as don't-care). Empty on all well-formed benchmarks.
    pub undetermined: Vec<(usize, usize)>,
}

impl PlaceCubes {
    /// Computes the cover cubes of every place (Lemma 10).
    pub fn compute(stg: &Stg, analysis: &StgAnalysis) -> Self {
        let np = stg.net().place_count();
        let nsig = stg.signal_count();
        let mut votes: Vec<Vec<Option<bool>>> = vec![vec![None; nsig]; np];
        let mut conflicted: Vec<Bits> = vec![Bits::zeros(nsig); np];
        let mut pair_places = HashMap::new();

        for sig in stg.signals() {
            for &t in stg.transitions_of(sig) {
                for &succ in analysis.next_of(t) {
                    let il = interleaved_nodes(stg, analysis, t, succ);
                    // Between t and next(t) the signal holds the value t
                    // switched to.
                    let value = stg.direction_of(t).target_value();
                    for pi in il.places.iter_ones() {
                        let p = si_petri::PlaceId(pi as u32);
                        if analysis.scr.place(p, sig) {
                            continue; // concurrent places keep the don't-care
                        }
                        match votes[pi][sig.index()] {
                            None => votes[pi][sig.index()] = Some(value),
                            Some(v) if v == value => {}
                            Some(_) => conflicted[pi].set(sig.index(), true),
                        }
                    }
                    pair_places.insert((t, succ), il.places);
                }
            }
        }

        let mut cubes = Vec::with_capacity(np);
        let mut undetermined = Vec::new();
        for (pi, row) in votes.iter().enumerate() {
            let mut cube = Cube::full(nsig);
            for (si, v) in row.iter().enumerate() {
                if conflicted[pi].get(si) {
                    undetermined.push((pi, si));
                    continue;
                }
                match v {
                    Some(val) => cube.set(si, Some(*val)),
                    None => {
                        // Non-concurrent but never interleaved: leave as
                        // don't-care (conservative) and record it.
                        let p = si_petri::PlaceId(pi as u32);
                        let s = si_stg::SignalId(si as u16);
                        if !analysis.scr.place(p, s) {
                            undetermined.push((pi, si));
                        }
                    }
                }
            }
            cubes.push(cube);
        }

        PlaceCubes {
            cubes,
            pair_places,
            undetermined,
        }
    }

    /// The cube of one place.
    pub fn cube(&self, p: si_petri::PlaceId) -> &Cube {
        &self.cubes[p.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_stg::benchmarks;

    fn cubes_for(stg: &Stg) -> (StgAnalysis, PlaceCubes) {
        let analysis = StgAnalysis::analyze(stg).expect("consistent");
        let cubes = PlaceCubes::compute(stg, &analysis);
        (analysis, cubes)
    }

    /// Oracle check: every cube covers every code of its marked region.
    fn assert_cubes_cover_marked_regions(stg: &Stg) {
        let (_, cubes) = cubes_for(stg);
        let rg = si_petri::ReachabilityGraph::build(stg.net(), 1_000_000).unwrap();
        let enc = si_stg::StateEncoding::compute(stg, &rg).unwrap();
        for s in rg.states() {
            let m = rg.marking(s);
            let code = enc.code(s);
            for pi in m.iter_ones() {
                assert!(
                    cubes.cubes[pi].contains_vertex(code),
                    "{}: cube of place {} must cover code {} (state {})",
                    stg.name(),
                    stg.net().place_name(si_petri::PlaceId(pi as u32)),
                    code,
                    s.0
                );
            }
        }
    }

    #[test]
    fn cubes_cover_marked_regions_on_suite() {
        for stg in benchmarks::synthesizable_suite() {
            assert_cubes_cover_marked_regions(&stg);
        }
    }

    #[test]
    fn clatch_cubes_are_exact() {
        // Fig. 7: place cubes exactly define the excitation regions.
        let stg = si_stg::generators::clatch(3);
        let (_, cubes) = cubes_for(&stg);
        let rg = si_petri::ReachabilityGraph::build(stg.net(), 10_000).unwrap();
        let enc = si_stg::StateEncoding::compute(&stg, &rg).unwrap();
        // For each place: number of reachable codes inside the cube equals
        // the number of markings of its marked region (exactness).
        for p in stg.net().places() {
            let mr_codes: std::collections::BTreeSet<_> = rg
                .states()
                .filter(|&s| rg.marking(s).get(p.index()))
                .map(|s| enc.code(s).clone())
                .collect();
            let covered: std::collections::BTreeSet<_> = rg
                .states()
                .filter(|&s| cubes.cubes[p.index()].contains_vertex(enc.code(s)))
                .map(|s| enc.code(s).clone())
                .collect();
            assert_eq!(mr_codes, covered, "place {}", stg.net().place_name(p));
        }
    }

    #[test]
    fn fig5_pb_overestimates_as_predicted() {
        let stg = benchmarks::fig5_example();
        let (_, cubes) = cubes_for(&stg);
        let pb = stg.net().place_by_name("pb").unwrap();
        // cube(pb) = r=1, y=0, x and z free
        let cube = &cubes.cubes[pb.index()];
        assert_eq!(cube.literal_count(), 2);
        // it covers the unreachable code (r,x,z,y) = 1110
        let bad: Bits = [true, true, true, false].into_iter().collect();
        assert!(cube.contains_vertex(&bad));
    }

    #[test]
    fn no_undetermined_literals_on_suite() {
        for stg in benchmarks::synthesizable_suite() {
            let (_, cubes) = cubes_for(&stg);
            assert!(
                cubes.undetermined.is_empty(),
                "{}: undetermined literals {:?}",
                stg.name(),
                cubes.undetermined
            );
        }
    }
}
