//! The structural synthesis context (§VI–§VII).
//!
//! [`StructuralContext`] bundles everything the synthesis flow derives from
//! the STG *without touching the reachability graph*: consistency analysis,
//! place cover functions, the SM-cover, structural coding conflicts, the
//! refinement loop (Figs. 11/12), the CSC verdict (Theorems 14/15) and the
//! signal-region approximations (QPS domains, ER/QR covers with boundary
//! subtraction).

use crate::cubes::PlaceCubes;
use si_boolean::{Bits, Cover};
use si_petri::{sm_cover, PlaceId, SmComponent, SmCoverError, SmFinder, TransId};
use si_stg::{ConsistencyError, Direction, InsertionMap, SignalId, Stg, StgAnalysis};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide construction counter feeding
/// [`StructuralContext::build_count`] (the full-analysis path; the
/// incremental path counts into [`StructuralContext::incremental_count`]).
static BUILD_COUNT: AtomicUsize = AtomicUsize::new(0);

/// Process-wide counter of incremental re-analyses
/// ([`StructuralContext::build_incremental`]).
static INCREMENTAL_COUNT: AtomicUsize = AtomicUsize::new(0);

/// Refinement cap shared by the full build and the incremental replay.
const MAX_REFINE_ROUNDS: usize = 4;

/// Cube cap of one refined place cover (see [`StructuralContext::refine_round`]).
const REFINED_CUBE_CAP: usize = 24;

/// Net size up to which the first refinement round runs unconditionally.
const UNCONDITIONAL_PLACE_LIMIT: usize = 128;

/// The recorded refinement history of one [`StructuralContext::build_traced`]
/// run: the per-round cover snapshots and change sets that
/// [`StructuralContext::build_incremental`] replays.
#[derive(Clone, Debug, Default)]
pub struct RefinementTrace {
    /// Post-round cover snapshot and the places whose cover changed, one
    /// entry per executed round.
    rounds: Vec<RoundTrace>,
}

#[derive(Clone, Debug)]
struct RoundTrace {
    /// `place_cover` after the round.
    covers: Vec<Cover>,
    /// Places whose stored cover was replaced this round.
    changed: Bits,
}

/// A structural coding conflict (Def. 11): two places of one SM-component
/// whose cover functions intersect.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodingConflict {
    /// Index of the SM-component in the SM-cover.
    pub sm_index: usize,
    /// The two conflicting places.
    pub places: (PlaceId, PlaceId),
}

/// Outcome of the structural CSC analysis (Theorems 14/15).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CscVerdict {
    /// No structural coding conflicts at all — USC holds (and hence CSC).
    UscHolds,
    /// Conflicts remain but every preset place of every synthesized-signal
    /// transition is conflict-free in some SM-component — CSC holds.
    CscHolds,
    /// CSC could not be established; state-signal insertion would be
    /// required (out of the scope the paper covers in this flow).
    Unknown {
        /// Preset places for which no conflict-free component was found.
        places: Vec<PlaceId>,
    },
}

/// Errors of context construction / synthesis preconditions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SynthesisError {
    /// The STG failed structural consistency (Fig. 9).
    Inconsistent(ConsistencyError),
    /// No SM-cover exists (net outside the supported class).
    NotSmCoverable(SmCoverError),
    /// CSC could not be established structurally.
    CscViolationPossible {
        /// The unresolved preset places.
        places: Vec<PlaceId>,
    },
    /// A derived cover failed the implementability conditions.
    CoverCheckFailed {
        /// The signal whose cover failed.
        signal: SignalId,
        /// Human-readable detail.
        detail: String,
    },
    /// A worker of the per-signal synthesis pool panicked while
    /// synthesizing this signal. The panic was caught at the worker
    /// boundary — the process (and the other signals' results) survive;
    /// the earliest-listed failing signal still wins, so this is as
    /// deterministic as any other per-signal error.
    WorkerPanicked {
        /// The signal whose synthesis panicked.
        signal: SignalId,
        /// The panic message.
        detail: String,
    },
}

impl std::fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthesisError::Inconsistent(e) => write!(f, "inconsistent STG: {e}"),
            SynthesisError::NotSmCoverable(e) => write!(f, "not SM-coverable: {e}"),
            SynthesisError::CscViolationPossible { places } => {
                write!(f, "possible CSC violation at {} place(s)", places.len())
            }
            SynthesisError::CoverCheckFailed { signal, detail } => {
                write!(f, "cover check failed for signal #{}: {detail}", signal.0)
            }
            SynthesisError::WorkerPanicked { signal, detail } => {
                write!(
                    f,
                    "synthesis worker panicked on signal #{}: {detail}",
                    signal.0
                )
            }
        }
    }
}

impl std::error::Error for SynthesisError {}

/// Signal-region approximations of one signal, ready for cover synthesis.
#[derive(Clone, Debug)]
pub struct SignalCovers {
    /// The signal.
    pub signal: SignalId,
    /// Rising transitions.
    pub rising: Vec<TransId>,
    /// Falling transitions.
    pub falling: Vec<TransId>,
    /// `C(t)` — single-region excitation cover per transition.
    pub er: HashMap<TransId, Cover>,
    /// QR cover per transition (boundary-subtracted).
    pub qr: HashMap<TransId, Cover>,
    /// Restricted QR cover per transition (shared QPS places dropped).
    pub qr_restricted: HashMap<TransId, Cover>,
    /// Union of rising ER covers (GER(a+) approximation).
    pub ger_rise: Cover,
    /// Union of falling ER covers.
    pub ger_fall: Cover,
    /// Union of rising QR covers (GQR(1) approximation).
    pub gqr_one: Cover,
    /// Union of falling QR covers (GQR(0) approximation).
    pub gqr_zero: Cover,
}

/// Everything the structural flow knows about an STG.
#[derive(Debug)]
pub struct StructuralContext<'a> {
    /// The specification.
    pub stg: &'a Stg,
    /// Consistency + concurrency analysis.
    pub analysis: StgAnalysis,
    /// The initial (Lemma 10) cover cubes and interleave cache.
    pub cubes: PlaceCubes,
    /// Current (possibly refined) cover function per place.
    pub place_cover: Vec<Cover>,
    /// The SM-cover used for conflict detection and refinement.
    pub sm_cover: Vec<SmComponent>,
    /// QPS per transition (places interleaved between `t` and `next(t)`).
    pub qps: Vec<Bits>,
    /// Number of refinement rounds that were applied.
    pub refinement_rounds: usize,
}

impl<'a> StructuralContext<'a> {
    /// Builds the context: consistency, cubes, SM-cover, QPS; then runs the
    /// refinement loop while structural conflicts shrink and derives the
    /// CSC verdict.
    ///
    /// # Errors
    ///
    /// [`SynthesisError::Inconsistent`] / [`SynthesisError::NotSmCoverable`]
    /// on precondition failures; the CSC verdict is *not* an error here —
    /// callers decide (synthesis rejects `Unknown`, analysis tools may not).
    pub fn build(stg: &'a Stg) -> Result<Self, SynthesisError> {
        BUILD_COUNT.fetch_add(1, Ordering::Relaxed);
        let mut ctx = Self::unrefined(stg)?;
        ctx.refine_until_stable(MAX_REFINE_ROUNDS);
        Ok(ctx)
    }

    /// Like [`StructuralContext::build`], additionally recording the
    /// refinement history so later insertions of a state signal can be
    /// re-analysed incrementally ([`StructuralContext::build_incremental`]).
    ///
    /// # Errors
    ///
    /// As [`StructuralContext::build`].
    pub fn build_traced(stg: &'a Stg) -> Result<(Self, RefinementTrace), SynthesisError> {
        BUILD_COUNT.fetch_add(1, Ordering::Relaxed);
        let mut ctx = Self::unrefined(stg)?;
        let mut trace = RefinementTrace::default();
        ctx.refine_until_stable_traced(MAX_REFINE_ROUNDS, Some(&mut trace));
        Ok((ctx, trace))
    }

    /// How many times this process ran the **full** structural analysis
    /// ([`StructuralContext::build`] / [`StructuralContext::build_traced`]).
    ///
    /// The build-count hook of the CSC resolve loop (same pattern as
    /// `ReachabilityGraph::build_count`): tests snapshot it, resolve a
    /// conflicted STG, and assert the candidate loop re-analysed
    /// incrementally instead of rebuilding per candidate. Monotonic, never
    /// reset; callers compare deltas, not absolute values.
    pub fn build_count() -> usize {
        BUILD_COUNT.load(Ordering::Relaxed)
    }

    /// How many times this process ran the incremental re-analysis
    /// ([`StructuralContext::build_incremental`]).
    pub fn incremental_count() -> usize {
        INCREMENTAL_COUNT.load(Ordering::Relaxed)
    }

    /// The pre-refinement context: consistency, cubes, SM-cover, QPS.
    fn unrefined(stg: &'a Stg) -> Result<Self, SynthesisError> {
        let analysis = StgAnalysis::analyze(stg).map_err(SynthesisError::Inconsistent)?;
        let cubes = PlaceCubes::compute(stg, &analysis);
        let sms = sm_cover(stg.net()).map_err(SynthesisError::NotSmCoverable)?;
        let nsig = stg.signal_count();
        let place_cover: Vec<Cover> = cubes
            .cubes
            .iter()
            .map(|c| Cover::from_cubes(nsig, [c.clone()]))
            .collect();

        // QPS per transition from the interleave cache.
        let nt = stg.net().transition_count();
        let mut qps = vec![Bits::zeros(stg.net().place_count()); nt];
        for t in stg.net().transitions() {
            for &succ in analysis.next_of(t) {
                if let Some(places) = cubes.pair_places.get(&(t, succ)) {
                    qps[t.index()].union_with(places);
                }
            }
        }

        Ok(StructuralContext {
            stg,
            analysis,
            cubes,
            place_cover,
            sm_cover: sms,
            qps,
            refinement_rounds: 0,
        })
    }

    /// Incremental re-analysis after a state-signal insertion — the
    /// `resolve` loop's per-candidate path.
    ///
    /// Produces a context **bit-identical** to [`StructuralContext::build`]
    /// on `stg`, but instead of refining every place cover from scratch it
    /// replays the parent's recorded refinement rounds: only the covers
    /// touched by the insertion — the new signal's ER/QR neighbourhood
    /// (places whose cover cube gained a literal of the new signal), the
    /// split halves and wait places, any SM-component or concurrency edge
    /// the surgery disturbed, plus whatever that dirt spreads to round by
    /// round — are recomputed; every other cover is copied from the trace
    /// with the new signal appended as a don't-care column (appending a
    /// column commutes with every cover operation (see
    /// [`si_boolean::Cube::widened`]), so the copies are exact).
    ///
    /// `parent` and `trace` must come from
    /// [`StructuralContext::build_traced`] on the STG the plan was applied
    /// to, and `stg`/`map` must be the `si_stg::apply_insertion_mapped`
    /// result. Dirtiness tracking is conservative: over-approximating only
    /// costs time, never bit-identity (prop-tested against full rebuilds
    /// across the benchmark and generator suites).
    ///
    /// # Errors
    ///
    /// As [`StructuralContext::build`] (the candidate may be inconsistent
    /// or not SM-coverable — such candidates are simply rejected by the
    /// resolve loop).
    pub fn build_incremental<'b>(
        parent: &StructuralContext<'_>,
        trace: &RefinementTrace,
        stg: &'b Stg,
        map: &InsertionMap,
    ) -> Result<StructuralContext<'b>, SynthesisError> {
        INCREMENTAL_COUNT.fetch_add(1, Ordering::Relaxed);
        let mut ctx = StructuralContext::unrefined(stg)?;
        ctx.refine_incremental(parent, trace, map);
        Ok(ctx)
    }

    /// The replayed refinement loop behind
    /// [`StructuralContext::build_incremental`].
    fn refine_incremental(
        &mut self,
        parent: &StructuralContext<'_>,
        trace: &RefinementTrace,
        map: &InsertionMap,
    ) {
        let np = self.stg.net().place_count();
        let nsig = self.stg.signal_count();
        let cr = |p: usize, q: usize| {
            self.analysis
                .cr
                .places(PlaceId(p as u32), PlaceId(q as u32))
        };

        // ---- structural dirtiness -------------------------------------
        // A place is *clean* for a replayed round when its whole
        // refinement computation provably matches the parent's (modulo the
        // appended don't-care column). Everything else recomputes honestly.

        // 1. Value dirt at round 0: unmapped places (split halves, wait
        //    places) and places whose initial cube differs — i.e. gained a
        //    literal of the new signal or shifted on the old ones.
        let mut value_dirty = Bits::zeros(np);
        for p in 0..np {
            let clean = map.place_to_old[p].is_some_and(|q| {
                self.cubes.cubes[p] == parent.cubes.cubes[q.index()].widened(nsig)
            });
            if !clean {
                value_dirty.set(p, true);
            }
        }

        // 2. Function dirt around the surgery itself: anything concurrent
        //    with a new place (split halves, wait places) or — in the
        //    parent — with one of the split places reads a changed union.
        let np_old = parent.stg.net().place_count();
        let old_cr = |p: PlaceId, q: PlaceId| parent.analysis.cr.places(p, q);
        let splits_old: Vec<PlaceId> = (0..np_old)
            .filter(|&q| map.place_to_new[q].is_none())
            .map(|q| PlaceId(q as u32))
            .collect();
        let unmapped_new: Vec<usize> = (0..np).filter(|&p| map.place_to_old[p].is_none()).collect();
        let mut func_dirty = Bits::zeros(np);
        for p in 0..np {
            let Some(q) = map.place_to_old[p] else {
                continue; // already value-dirty
            };
            if unmapped_new.iter().any(|&m| cr(p, m)) || splits_old.iter().any(|&s| old_cr(q, s)) {
                func_dirty.set(p, true);
            }
        }

        // 3. SM-components that do not correspond to their positional
        //    parent counterpart *modulo the surgery* (mapped members equal
        //    to the parent members minus the split places; extra members
        //    only from the new places) change the union sequence of their
        //    members and concurrent neighbours wholesale.
        let common = self.sm_cover.len().min(parent.sm_cover.len());
        let coarse = |snew: Option<&SmComponent>,
                      sold: Option<&SmComponent>,
                      func_dirty: &mut Bits| {
            if let Some(snew) = snew {
                for p in 0..np {
                    if snew.contains_place(PlaceId(p as u32))
                        || snew.places().iter().any(|&m| cr(p, m.index()))
                    {
                        func_dirty.set(p, true);
                    }
                }
            }
            if let Some(sold) = sold {
                for p in 0..np {
                    if let Some(q) = map.place_to_old[p] {
                        if sold.contains_place(q) || sold.places().iter().any(|&r| old_cr(q, r)) {
                            func_dirty.set(p, true);
                        }
                    }
                }
            }
        };
        for (snew, sold) in self.sm_cover.iter().zip(&parent.sm_cover) {
            // Mapped members of the candidate component vs the parent
            // component minus the split places; extra members must be new.
            let mut mapped = Bits::zeros(np_old);
            for &p in snew.places() {
                // Unmapped members (halves, waits) are allowed surgery
                // deltas — global rule 2 dirties everything they touch.
                if let Some(q) = map.place_to_old[p.index()] {
                    mapped.set(q.index(), true);
                }
            }
            let mut expected = sold.place_set().clone();
            for &s in &splits_old {
                expected.set(s.index(), false);
            }
            if mapped != expected {
                coarse(Some(snew), Some(sold), &mut func_dirty);
            }
        }
        for snew in &self.sm_cover[common..] {
            coarse(Some(snew), None, &mut func_dirty);
        }
        for sold in &parent.sm_cover[common..] {
            coarse(None, Some(sold), &mut func_dirty);
        }

        // 4. Concurrency drift on mapped pairs: the union domains of p
        //    differ even though the components correspond.
        for p in 0..np {
            if func_dirty.get(p) {
                continue;
            }
            let Some(q) = map.place_to_old[p] else {
                continue; // already value-dirty
            };
            for r in 0..np {
                if let Some(s) = map.place_to_old[r] {
                    if cr(p, r) != old_cr(q, s) {
                        func_dirty.set(p, true);
                        break;
                    }
                }
            }
        }

        // Dirt for a round: function dirt, value dirt, and one concurrency
        // step around the value dirt (the unions read neighbouring covers
        // of the previous round).
        let neighbours = |seed: &Bits| -> Bits {
            let mut out = seed.clone();
            for p in 0..np {
                if !out.get(p) && seed.iter_ones().any(|q| cr(p, q)) {
                    out.set(p, true);
                }
            }
            out
        };
        let mut dirty = func_dirty.clone();
        dirty.union_with(&neighbours(&value_dirty));

        // ---- replayed refinement loop ---------------------------------
        let liberal = np <= UNCONDITIONAL_PLACE_LIMIT;
        for round in 0..MAX_REFINE_ROUNDS {
            let liberal_first_round = liberal && round == 0;
            if !self.has_conflict() && !liberal_first_round {
                break;
            }
            let have_trace = round < trace.rounds.len();
            if !have_trace {
                // Refining past the parent's recorded history: no data to
                // replay, recompute everything from here on.
                dirty = Bits::ones(np);
            }
            let snapshot = self.place_cover.clone();
            let mut changed = false;
            for p in 0..np {
                if have_trace && !dirty.get(p) {
                    // Clean: the fresh computation would reproduce the
                    // parent's post-round cover, widened.
                    let q = map.place_to_old[p]
                        .expect("clean places are mapped")
                        .index();
                    let rt = &trace.rounds[round];
                    if rt.changed.get(q) {
                        changed = true;
                        self.place_cover[p] = rt.covers[q].widened(nsig);
                    }
                    continue;
                }
                let refined = self.refined_from_snapshot(&snapshot, PlaceId(p as u32));
                if !refined.equivalent(&snapshot[p]) {
                    changed = true;
                    self.place_cover[p] = refined;
                }
            }
            if !changed {
                break;
            }
            self.refinement_rounds += 1;
            // Dirt spreads one concurrency step per round: a clean place
            // goes dirty once any cover its unions read was recomputed.
            dirty = neighbours(&dirty);
            dirty.union_with(&func_dirty);
        }
    }

    /// Detects all structural coding conflicts (Def. 11) under the current
    /// cover functions.
    pub fn conflicts(&self) -> Vec<CodingConflict> {
        let mut out = Vec::new();
        for (si, sm) in self.sm_cover.iter().enumerate() {
            let places = sm.places();
            for i in 0..places.len() {
                for j in i + 1..places.len() {
                    let (p, q) = (places[i], places[j]);
                    if self.place_cover[p.index()].intersects(&self.place_cover[q.index()]) {
                        out.push(CodingConflict {
                            sm_index: si,
                            places: (p, q),
                        });
                    }
                }
            }
        }
        out
    }

    /// The Fig. 11 refinement of one place against a cover snapshot: the
    /// cover is intersected with the union of the covers of its concurrent
    /// places in every SM-component that does not contain it. Sound by
    /// Property 7 — every reachable marking of `MR(p)` marks exactly one
    /// concurrent place of each such component. Shared by the full rounds
    /// and the incremental replay so both compute the same function.
    fn refined_from_snapshot(&self, snapshot: &[Cover], p: PlaceId) -> Cover {
        let mut refined = snapshot[p.index()].clone();
        for sm in &self.sm_cover {
            if sm.contains_place(p) {
                continue;
            }
            let mut union = Cover::empty(self.stg.signal_count());
            for &q in sm.places() {
                if self.analysis.cr.places(p, q) {
                    union = union.or(&snapshot[q.index()]);
                }
            }
            if union.is_empty() {
                // No concurrent place: p can never be marked together
                // with this component — impossible for live nets, so
                // skip rather than emptying the cover.
                continue;
            }
            if union.covers(&refined) {
                // This component adds no information; skipping keeps
                // the intermediate cover from growing multiplicatively
                // across no-op intersections.
                continue;
            }
            let candidate = {
                let mut c = refined.and(&union);
                c.remove_single_cube_contained();
                c
            };
            // Refinement precision is traded against cover size: a
            // highly concurrent place (e.g. the join of an n-way burst)
            // would otherwise accumulate multiplicative cube growth
            // across components and poison every downstream product.
            // Any prefix of refinements is sound, so stop early.
            if candidate.cube_count() > REFINED_CUBE_CAP {
                break;
            }
            refined = candidate;
        }
        refined
    }

    /// One refinement round (Fig. 11) over all places. Returns `true` if
    /// any cover changed.
    pub fn refine_round(&mut self) -> bool {
        self.refine_round_traced(None)
    }

    fn refine_round_traced(&mut self, mut changed_places: Option<&mut Bits>) -> bool {
        let mut changed = false;
        let snapshot = self.place_cover.clone();
        for p in self.stg.net().places() {
            let refined = self.refined_from_snapshot(&snapshot, p);
            // Keep the compact original whenever the refinement is merely a
            // re-expression: storing an equivalent multi-cube form would
            // slow every downstream cover operation for no precision gain.
            if !refined.equivalent(&self.place_cover[p.index()]) {
                changed = true;
                if let Some(bits) = changed_places.as_deref_mut() {
                    bits.set(p.index(), true);
                }
                self.place_cover[p.index()] = refined;
            }
        }
        changed
    }

    /// Runs refinement rounds (Fig. 12 discipline), up to `max_rounds`.
    ///
    /// The paper observes that refining *all* places — not only the
    /// conflicting ones — "leads to much better minimization solutions", so
    /// one round always runs on moderate-size nets; further rounds run only
    /// while structural conflicts persist and covers still change. On very
    /// large nets (where cover blow-up would dominate) refinement stays
    /// conflict-driven.
    pub fn refine_until_stable(&mut self, max_rounds: usize) {
        self.refine_until_stable_traced(max_rounds, None);
    }

    fn refine_until_stable_traced(
        &mut self,
        max_rounds: usize,
        mut trace: Option<&mut RefinementTrace>,
    ) {
        let liberal = self.stg.net().place_count() <= UNCONDITIONAL_PLACE_LIMIT;
        for round in 0..max_rounds {
            let conflicted = self.has_conflict();
            let liberal_first_round = liberal && round == 0;
            if !conflicted && !liberal_first_round {
                break;
            }
            let mut changed_places = Bits::zeros(self.stg.net().place_count());
            if !self.refine_round_traced(Some(&mut changed_places)) {
                break;
            }
            if let Some(t) = trace.as_deref_mut() {
                t.rounds.push(RoundTrace {
                    covers: self.place_cover.clone(),
                    changed: changed_places,
                });
            }
            self.refinement_rounds += 1;
        }
    }

    /// `true` iff any structural coding conflict (Def. 11) survives under
    /// the current covers — the early-exit form of
    /// `!self.conflicts().is_empty()`.
    pub fn has_conflict(&self) -> bool {
        self.sm_cover.iter().any(|sm| {
            let places = sm.places();
            places.iter().enumerate().any(|(i, &p)| {
                places[i + 1..]
                    .iter()
                    .any(|&q| self.place_cover[p.index()].intersects(&self.place_cover[q.index()]))
            })
        })
    }

    /// The structural CSC verdict (Theorems 14/15).
    ///
    /// A CSC violation requires the Theorem 14 witness: an SM-component
    /// holding a preset place `p` of a synthesized transition `t` together
    /// with a place `q` that (a) does not feed any transition of `t`'s
    /// signal and (b) whose cover intersects the excitation cover `C(t)`.
    /// CSC is established (Theorem 15) when every such `p` lies in some
    /// SM-component free of witnesses — searched first in the SM-cover,
    /// then among additionally enumerated components.
    pub fn csc_verdict(&self) -> CscVerdict {
        if !self.has_conflict() {
            return CscVerdict::UscHolds;
        }
        let mut unresolved = self.unresolved_places(false);
        unresolved.sort_unstable();
        unresolved.dedup();
        if unresolved.is_empty() {
            CscVerdict::CscHolds
        } else {
            CscVerdict::Unknown { places: unresolved }
        }
    }

    /// Boolean form of [`StructuralContext::csc_verdict`]: `true` iff the
    /// verdict is not `Unknown`. Stops at the first unresolved place
    /// instead of collecting them all — the form the CSC resolve loop uses
    /// to prune candidates (most rejected candidates have several
    /// unresolved places; their witness searches are skipped).
    pub fn csc_holds(&self) -> bool {
        !self.has_conflict() || self.unresolved_places(true).is_empty()
    }

    /// The unresolved preset places behind `CscVerdict::Unknown`,
    /// optionally stopping at the first one.
    fn unresolved_places(&self, stop_early: bool) -> Vec<PlaceId> {
        let finder = SmFinder::new(self.stg.net());
        let mut unresolved = Vec::new();
        for t in self.stg.net().transitions() {
            if !self.stg.signal_kind(self.stg.signal_of(t)).is_synthesized() {
                continue;
            }
            let er = self.er_cover(t);
            'place: for &p in self.stg.net().pre_t(t) {
                // In-cover components first.
                for sm in &self.sm_cover {
                    if sm.contains_place(p) && self.witness_free_in(p, t, &er, sm) {
                        continue 'place;
                    }
                }
                for sm in finder.enumerate(&[p], &[], 8) {
                    if self.witness_free_in(p, t, &er, &sm) {
                        continue 'place;
                    }
                }
                unresolved.push(p);
                if stop_early {
                    return unresolved;
                }
            }
        }
        unresolved
    }

    /// No Theorem 14 witness against transition `t` inside `sm`.
    fn witness_free_in(&self, p: PlaceId, t: TransId, er: &Cover, sm: &SmComponent) -> bool {
        let sig = self.stg.signal_of(t);
        sm.places().iter().all(|&q| {
            q == p
                // q feeding a transition of the same signal cannot witness a
                // CSC violation (Theorem 14, condition 2).
                || self
                    .stg
                    .net()
                    .post_p(q)
                    .iter()
                    .any(|&u| self.stg.signal_of(u) == sig)
                || !self.place_cover[q.index()].intersects(er)
        })
    }

    /// `C(t)` — the excitation-region cover of a transition: the product of
    /// the cover functions of its preset places (§VI-A).
    pub fn er_cover(&self, t: TransId) -> Cover {
        let mut cover = Cover::universe(self.stg.signal_count());
        for &p in self.stg.net().pre_t(t) {
            cover = cover.and(&self.place_cover[p.index()]);
        }
        cover
    }

    /// The QR cover of a transition: union of the cover functions of its
    /// QPS places, with the boundary subtraction of §VI-A — places feeding
    /// a `next(t)` transition have that transition's ER cover removed.
    pub fn qr_cover(&self, t: TransId) -> Cover {
        self.qr_cover_over(self.qps[t.index()].clone(), t)
    }

    /// The restricted QR cover (§III-B, eq. 4): QPS places shared with
    /// other transitions of the same signal are excluded before the union.
    pub fn qr_restricted_cover(&self, t: TransId) -> Cover {
        self.qr_restricted_for(t, std::slice::from_ref(&t))
    }

    /// Cluster-aware restricted QR: QPS places shared with same-signal
    /// transitions *outside the cluster* are excluded (places shared among
    /// cluster members stay — the cluster is implemented by one gate).
    pub fn qr_restricted_for(&self, t: TransId, cluster: &[TransId]) -> Cover {
        let sig = self.stg.signal_of(t);
        let mut qps = self.qps[t.index()].clone();
        for &u in self.stg.transitions_of(sig) {
            if u != t && !cluster.contains(&u) {
                qps.subtract(&self.qps[u.index()]);
            }
        }
        self.qr_cover_over(qps, t)
    }

    fn qr_cover_over(&self, qps: Bits, t: TransId) -> Cover {
        let nsig = self.stg.signal_count();
        let mut cover = Cover::empty(nsig);
        for pi in qps.iter_ones() {
            let p = PlaceId(pi as u32);
            let mut f = self.place_cover[pi].clone();
            for &succ in self.analysis.next_of(t) {
                if self.stg.net().pre_t(succ).contains(&p) {
                    f = f.sharp(&self.er_cover(succ));
                }
            }
            cover = cover.or(&f);
        }
        cover
    }

    /// All region approximations of one signal.
    pub fn signal_covers(&self, signal: SignalId) -> SignalCovers {
        let nsig = self.stg.signal_count();
        let mut sc = SignalCovers {
            signal,
            rising: self.stg.transitions_of_dir(signal, Direction::Rise),
            falling: self.stg.transitions_of_dir(signal, Direction::Fall),
            er: HashMap::new(),
            qr: HashMap::new(),
            qr_restricted: HashMap::new(),
            ger_rise: Cover::empty(nsig),
            ger_fall: Cover::empty(nsig),
            gqr_one: Cover::empty(nsig),
            gqr_zero: Cover::empty(nsig),
        };
        for &t in sc.rising.iter().chain(&sc.falling) {
            let er = self.er_cover(t);
            let qr = self.qr_cover(t);
            let qrr = self.qr_restricted_cover(t);
            match self.stg.direction_of(t) {
                Direction::Rise => {
                    sc.ger_rise = sc.ger_rise.or(&er);
                    sc.gqr_one = sc.gqr_one.or(&qr);
                }
                Direction::Fall => {
                    sc.ger_fall = sc.ger_fall.or(&er);
                    sc.gqr_zero = sc.gqr_zero.or(&qr);
                }
            }
            sc.er.insert(t, er);
            sc.qr.insert(t, qr);
            sc.qr_restricted.insert(t, qrr);
        }
        sc
    }

    /// Total number of cubes across all current place covers — the `#cubes`
    /// statistic of Table VIII.
    pub fn total_cubes(&self) -> usize {
        self.place_cover.iter().map(Cover::cube_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_stg::benchmarks;

    #[test]
    fn fig1_conflict_detected_and_csc_proved() {
        let stg = benchmarks::running_example();
        let ctx = StructuralContext::build(&stg).unwrap();
        // The USC conflict (p0 vs the mode-2 waiting place) survives
        // refinement …
        let conflicts = ctx.conflicts();
        assert!(!conflicts.is_empty(), "expected surviving conflicts");
        // … but the CSC verdict is positive (Theorem 15).
        match ctx.csc_verdict() {
            CscVerdict::CscHolds => {}
            v => panic!("expected CscHolds, got {v:?}"),
        }
    }

    #[test]
    fn fig5_refinement_removes_overestimation() {
        let stg = benchmarks::fig5_example();
        let ctx = StructuralContext::build(&stg).unwrap();
        let pb = stg.net().place_by_name("pb").unwrap();
        // After refinement the unreachable code (r,x,z,y) = 1110 is gone.
        let bad: Bits = [true, true, true, false].into_iter().collect();
        assert!(
            !ctx.place_cover[pb.index()].contains_vertex(&bad),
            "refinement must exclude the unreachable code, cover = {}",
            ctx.place_cover[pb.index()]
        );
        assert!(ctx.refinement_rounds > 0);
    }

    #[test]
    fn conflict_free_benchmarks_report_usc() {
        for stg in [
            benchmarks::half_handshake(),
            benchmarks::converter(),
            si_stg::generators::clatch(3),
        ] {
            let ctx = StructuralContext::build(&stg).unwrap();
            assert_eq!(
                ctx.csc_verdict(),
                CscVerdict::UscHolds,
                "{} should be conflict-free",
                stg.name()
            );
        }
        // The 2-stage sequencer returns to the all-zero code once per
        // stage: a USC conflict between input-only markings, CSC intact.
        let stg = si_stg::generators::sequencer(2);
        let ctx = StructuralContext::build(&stg).unwrap();
        assert_eq!(ctx.csc_verdict(), CscVerdict::CscHolds);
    }

    #[test]
    fn vme_raw_is_rejected_by_csc_analysis() {
        let stg = benchmarks::vme_read_raw();
        let ctx = StructuralContext::build(&stg).unwrap();
        match ctx.csc_verdict() {
            CscVerdict::Unknown { places } => assert!(!places.is_empty()),
            v => panic!("raw VME must not pass the CSC check, got {v:?}"),
        }
    }

    #[test]
    fn er_covers_are_safe_overapproximations() {
        // For every benchmark and every transition: the structural ER cover
        // contains every reachable code of the true excitation region and
        // no reachable code outside it (Property 13 under refinement).
        for stg in benchmarks::synthesizable_suite() {
            let ctx = StructuralContext::build(&stg).unwrap();
            let rg = si_petri::ReachabilityGraph::build(stg.net(), 1_000_000).unwrap();
            let enc = si_stg::StateEncoding::compute(&stg, &rg).unwrap();
            for t in stg.net().transitions() {
                let cover = ctx.er_cover(t);
                for s in rg.states() {
                    let in_er = rg.successors(s).iter().any(|&(u, _)| u == t);
                    if in_er {
                        assert!(
                            cover.contains_vertex(enc.code(s)),
                            "{}: ER({}) must cover code {}",
                            stg.name(),
                            stg.transition_display(t),
                            enc.code(s)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn qr_covers_contain_true_quiescent_codes() {
        // Property 12.2: every QR marking is covered by the QR cover.
        for stg in benchmarks::synthesizable_suite() {
            let ctx = StructuralContext::build(&stg).unwrap();
            let rg = si_petri::ReachabilityGraph::build(stg.net(), 1_000_000).unwrap();
            let enc = si_stg::StateEncoding::compute(&stg, &rg).unwrap();
            for sig in stg.signals() {
                let regions = si_stg::SignalRegions::compute(&stg, &rg, sig);
                for (i, &t) in regions.transitions.iter().enumerate() {
                    let cover = ctx.qr_cover(t);
                    for si in regions.qr[i].iter_ones() {
                        let code = enc.code(si_petri::StateId(si as u32));
                        assert!(
                            cover.contains_vertex(code),
                            "{}: QR({}) missing code {}",
                            stg.name(),
                            stg.transition_display(t),
                            code
                        );
                    }
                }
            }
        }
    }
}
