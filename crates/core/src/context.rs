//! The structural synthesis context (§VI–§VII).
//!
//! [`StructuralContext`] bundles everything the synthesis flow derives from
//! the STG *without touching the reachability graph*: consistency analysis,
//! place cover functions, the SM-cover, structural coding conflicts, the
//! refinement loop (Figs. 11/12), the CSC verdict (Theorems 14/15) and the
//! signal-region approximations (QPS domains, ER/QR covers with boundary
//! subtraction).

use crate::cubes::PlaceCubes;
use si_boolean::{Bits, Cover};
use si_petri::{sm_cover, PlaceId, SmComponent, SmCoverError, SmFinder, TransId};
use si_stg::{ConsistencyError, Direction, SignalId, Stg, StgAnalysis};
use std::collections::HashMap;

/// A structural coding conflict (Def. 11): two places of one SM-component
/// whose cover functions intersect.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodingConflict {
    /// Index of the SM-component in the SM-cover.
    pub sm_index: usize,
    /// The two conflicting places.
    pub places: (PlaceId, PlaceId),
}

/// Outcome of the structural CSC analysis (Theorems 14/15).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CscVerdict {
    /// No structural coding conflicts at all — USC holds (and hence CSC).
    UscHolds,
    /// Conflicts remain but every preset place of every synthesized-signal
    /// transition is conflict-free in some SM-component — CSC holds.
    CscHolds,
    /// CSC could not be established; state-signal insertion would be
    /// required (out of the scope the paper covers in this flow).
    Unknown {
        /// Preset places for which no conflict-free component was found.
        places: Vec<PlaceId>,
    },
}

/// Errors of context construction / synthesis preconditions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SynthesisError {
    /// The STG failed structural consistency (Fig. 9).
    Inconsistent(ConsistencyError),
    /// No SM-cover exists (net outside the supported class).
    NotSmCoverable(SmCoverError),
    /// CSC could not be established structurally.
    CscViolationPossible {
        /// The unresolved preset places.
        places: Vec<PlaceId>,
    },
    /// A derived cover failed the implementability conditions.
    CoverCheckFailed {
        /// The signal whose cover failed.
        signal: SignalId,
        /// Human-readable detail.
        detail: String,
    },
}

impl std::fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthesisError::Inconsistent(e) => write!(f, "inconsistent STG: {e}"),
            SynthesisError::NotSmCoverable(e) => write!(f, "not SM-coverable: {e}"),
            SynthesisError::CscViolationPossible { places } => {
                write!(f, "possible CSC violation at {} place(s)", places.len())
            }
            SynthesisError::CoverCheckFailed { signal, detail } => {
                write!(f, "cover check failed for signal #{}: {detail}", signal.0)
            }
        }
    }
}

impl std::error::Error for SynthesisError {}

/// Signal-region approximations of one signal, ready for cover synthesis.
#[derive(Clone, Debug)]
pub struct SignalCovers {
    /// The signal.
    pub signal: SignalId,
    /// Rising transitions.
    pub rising: Vec<TransId>,
    /// Falling transitions.
    pub falling: Vec<TransId>,
    /// `C(t)` — single-region excitation cover per transition.
    pub er: HashMap<TransId, Cover>,
    /// QR cover per transition (boundary-subtracted).
    pub qr: HashMap<TransId, Cover>,
    /// Restricted QR cover per transition (shared QPS places dropped).
    pub qr_restricted: HashMap<TransId, Cover>,
    /// Union of rising ER covers (GER(a+) approximation).
    pub ger_rise: Cover,
    /// Union of falling ER covers.
    pub ger_fall: Cover,
    /// Union of rising QR covers (GQR(1) approximation).
    pub gqr_one: Cover,
    /// Union of falling QR covers (GQR(0) approximation).
    pub gqr_zero: Cover,
}

/// Everything the structural flow knows about an STG.
#[derive(Debug)]
pub struct StructuralContext<'a> {
    /// The specification.
    pub stg: &'a Stg,
    /// Consistency + concurrency analysis.
    pub analysis: StgAnalysis,
    /// The initial (Lemma 10) cover cubes and interleave cache.
    pub cubes: PlaceCubes,
    /// Current (possibly refined) cover function per place.
    pub place_cover: Vec<Cover>,
    /// The SM-cover used for conflict detection and refinement.
    pub sm_cover: Vec<SmComponent>,
    /// QPS per transition (places interleaved between `t` and `next(t)`).
    pub qps: Vec<Bits>,
    /// Number of refinement rounds that were applied.
    pub refinement_rounds: usize,
}

impl<'a> StructuralContext<'a> {
    /// Builds the context: consistency, cubes, SM-cover, QPS; then runs the
    /// refinement loop while structural conflicts shrink and derives the
    /// CSC verdict.
    ///
    /// # Errors
    ///
    /// [`SynthesisError::Inconsistent`] / [`SynthesisError::NotSmCoverable`]
    /// on precondition failures; the CSC verdict is *not* an error here —
    /// callers decide (synthesis rejects `Unknown`, analysis tools may not).
    pub fn build(stg: &'a Stg) -> Result<Self, SynthesisError> {
        let analysis = StgAnalysis::analyze(stg).map_err(SynthesisError::Inconsistent)?;
        let cubes = PlaceCubes::compute(stg, &analysis);
        let sms = sm_cover(stg.net()).map_err(SynthesisError::NotSmCoverable)?;
        let nsig = stg.signal_count();
        let place_cover: Vec<Cover> = cubes
            .cubes
            .iter()
            .map(|c| Cover::from_cubes(nsig, [c.clone()]))
            .collect();

        // QPS per transition from the interleave cache.
        let nt = stg.net().transition_count();
        let mut qps = vec![Bits::zeros(stg.net().place_count()); nt];
        for t in stg.net().transitions() {
            for &succ in analysis.next_of(t) {
                if let Some(places) = cubes.pair_places.get(&(t, succ)) {
                    qps[t.index()].union_with(places);
                }
            }
        }

        let mut ctx = StructuralContext {
            stg,
            analysis,
            cubes,
            place_cover,
            sm_cover: sms,
            qps,
            refinement_rounds: 0,
        };
        ctx.refine_until_stable(4);
        Ok(ctx)
    }

    /// Detects all structural coding conflicts (Def. 11) under the current
    /// cover functions.
    pub fn conflicts(&self) -> Vec<CodingConflict> {
        let mut out = Vec::new();
        for (si, sm) in self.sm_cover.iter().enumerate() {
            let places = sm.places();
            for i in 0..places.len() {
                for j in i + 1..places.len() {
                    let (p, q) = (places[i], places[j]);
                    if self.place_cover[p.index()].intersects(&self.place_cover[q.index()]) {
                        out.push(CodingConflict {
                            sm_index: si,
                            places: (p, q),
                        });
                    }
                }
            }
        }
        out
    }

    /// One refinement round (Fig. 11): every place cover is intersected
    /// with the union of the covers of its concurrent places in every
    /// SM-component that does not contain it. Sound by Property 7 — every
    /// reachable marking of `MR(p)` marks exactly one concurrent place of
    /// each such component. Returns `true` if any cover changed.
    pub fn refine_round(&mut self) -> bool {
        let mut changed = false;
        let snapshot = self.place_cover.clone();
        for p in self.stg.net().places() {
            let mut refined = snapshot[p.index()].clone();
            for sm in &self.sm_cover {
                if sm.contains_place(p) {
                    continue;
                }
                let mut union = Cover::empty(self.stg.signal_count());
                for &q in sm.places() {
                    if self.analysis.cr.places(p, q) {
                        union = union.or(&snapshot[q.index()]);
                    }
                }
                if union.is_empty() {
                    // No concurrent place: p can never be marked together
                    // with this component — impossible for live nets, so
                    // skip rather than emptying the cover.
                    continue;
                }
                if union.covers(&refined) {
                    // This component adds no information; skipping keeps
                    // the intermediate cover from growing multiplicatively
                    // across no-op intersections.
                    continue;
                }
                let candidate = {
                    let mut c = refined.and(&union);
                    c.remove_single_cube_contained();
                    c
                };
                // Refinement precision is traded against cover size: a
                // highly concurrent place (e.g. the join of an n-way burst)
                // would otherwise accumulate multiplicative cube growth
                // across components and poison every downstream product.
                // Any prefix of refinements is sound, so stop early.
                const REFINED_CUBE_CAP: usize = 24;
                if candidate.cube_count() > REFINED_CUBE_CAP {
                    break;
                }
                refined = candidate;
            }
            // Keep the compact original whenever the refinement is merely a
            // re-expression: storing an equivalent multi-cube form would
            // slow every downstream cover operation for no precision gain.
            if !refined.equivalent(&self.place_cover[p.index()]) {
                changed = true;
                self.place_cover[p.index()] = refined;
            }
        }
        changed
    }

    /// Runs refinement rounds (Fig. 12 discipline), up to `max_rounds`.
    ///
    /// The paper observes that refining *all* places — not only the
    /// conflicting ones — "leads to much better minimization solutions", so
    /// one round always runs on moderate-size nets; further rounds run only
    /// while structural conflicts persist and covers still change. On very
    /// large nets (where cover blow-up would dominate) refinement stays
    /// conflict-driven.
    pub fn refine_until_stable(&mut self, max_rounds: usize) {
        const UNCONDITIONAL_PLACE_LIMIT: usize = 128;
        let liberal = self.stg.net().place_count() <= UNCONDITIONAL_PLACE_LIMIT;
        for round in 0..max_rounds {
            let conflicted = !self.conflicts().is_empty();
            let liberal_first_round = liberal && round == 0;
            if !conflicted && !liberal_first_round {
                break;
            }
            if !self.refine_round() {
                break;
            }
            self.refinement_rounds += 1;
        }
    }

    /// The structural CSC verdict (Theorems 14/15).
    ///
    /// A CSC violation requires the Theorem 14 witness: an SM-component
    /// holding a preset place `p` of a synthesized transition `t` together
    /// with a place `q` that (a) does not feed any transition of `t`'s
    /// signal and (b) whose cover intersects the excitation cover `C(t)`.
    /// CSC is established (Theorem 15) when every such `p` lies in some
    /// SM-component free of witnesses — searched first in the SM-cover,
    /// then among additionally enumerated components.
    pub fn csc_verdict(&self) -> CscVerdict {
        let conflicts = self.conflicts();
        if conflicts.is_empty() {
            return CscVerdict::UscHolds;
        }
        let finder = SmFinder::new(self.stg.net());
        let mut unresolved = Vec::new();
        for t in self.stg.net().transitions() {
            if !self.stg.signal_kind(self.stg.signal_of(t)).is_synthesized() {
                continue;
            }
            let er = self.er_cover(t);
            'place: for &p in self.stg.net().pre_t(t) {
                // In-cover components first.
                for sm in &self.sm_cover {
                    if sm.contains_place(p) && self.witness_free_in(p, t, &er, sm) {
                        continue 'place;
                    }
                }
                for sm in finder.enumerate(&[p], &[], 8) {
                    if self.witness_free_in(p, t, &er, &sm) {
                        continue 'place;
                    }
                }
                unresolved.push(p);
            }
        }
        unresolved.sort_unstable();
        unresolved.dedup();
        if unresolved.is_empty() {
            CscVerdict::CscHolds
        } else {
            CscVerdict::Unknown { places: unresolved }
        }
    }

    /// No Theorem 14 witness against transition `t` inside `sm`.
    fn witness_free_in(&self, p: PlaceId, t: TransId, er: &Cover, sm: &SmComponent) -> bool {
        let sig = self.stg.signal_of(t);
        sm.places().iter().all(|&q| {
            q == p
                // q feeding a transition of the same signal cannot witness a
                // CSC violation (Theorem 14, condition 2).
                || self
                    .stg
                    .net()
                    .post_p(q)
                    .iter()
                    .any(|&u| self.stg.signal_of(u) == sig)
                || !self.place_cover[q.index()].intersects(er)
        })
    }

    /// `C(t)` — the excitation-region cover of a transition: the product of
    /// the cover functions of its preset places (§VI-A).
    pub fn er_cover(&self, t: TransId) -> Cover {
        let mut cover = Cover::universe(self.stg.signal_count());
        for &p in self.stg.net().pre_t(t) {
            cover = cover.and(&self.place_cover[p.index()]);
        }
        cover
    }

    /// The QR cover of a transition: union of the cover functions of its
    /// QPS places, with the boundary subtraction of §VI-A — places feeding
    /// a `next(t)` transition have that transition's ER cover removed.
    pub fn qr_cover(&self, t: TransId) -> Cover {
        self.qr_cover_over(self.qps[t.index()].clone(), t)
    }

    /// The restricted QR cover (§III-B, eq. 4): QPS places shared with
    /// other transitions of the same signal are excluded before the union.
    pub fn qr_restricted_cover(&self, t: TransId) -> Cover {
        self.qr_restricted_for(t, std::slice::from_ref(&t))
    }

    /// Cluster-aware restricted QR: QPS places shared with same-signal
    /// transitions *outside the cluster* are excluded (places shared among
    /// cluster members stay — the cluster is implemented by one gate).
    pub fn qr_restricted_for(&self, t: TransId, cluster: &[TransId]) -> Cover {
        let sig = self.stg.signal_of(t);
        let mut qps = self.qps[t.index()].clone();
        for &u in self.stg.transitions_of(sig) {
            if u != t && !cluster.contains(&u) {
                qps.subtract(&self.qps[u.index()]);
            }
        }
        self.qr_cover_over(qps, t)
    }

    fn qr_cover_over(&self, qps: Bits, t: TransId) -> Cover {
        let nsig = self.stg.signal_count();
        let mut cover = Cover::empty(nsig);
        for pi in qps.iter_ones() {
            let p = PlaceId(pi as u32);
            let mut f = self.place_cover[pi].clone();
            for &succ in self.analysis.next_of(t) {
                if self.stg.net().pre_t(succ).contains(&p) {
                    f = f.sharp(&self.er_cover(succ));
                }
            }
            cover = cover.or(&f);
        }
        cover
    }

    /// All region approximations of one signal.
    pub fn signal_covers(&self, signal: SignalId) -> SignalCovers {
        let nsig = self.stg.signal_count();
        let mut sc = SignalCovers {
            signal,
            rising: self.stg.transitions_of_dir(signal, Direction::Rise),
            falling: self.stg.transitions_of_dir(signal, Direction::Fall),
            er: HashMap::new(),
            qr: HashMap::new(),
            qr_restricted: HashMap::new(),
            ger_rise: Cover::empty(nsig),
            ger_fall: Cover::empty(nsig),
            gqr_one: Cover::empty(nsig),
            gqr_zero: Cover::empty(nsig),
        };
        for &t in sc.rising.iter().chain(&sc.falling) {
            let er = self.er_cover(t);
            let qr = self.qr_cover(t);
            let qrr = self.qr_restricted_cover(t);
            match self.stg.direction_of(t) {
                Direction::Rise => {
                    sc.ger_rise = sc.ger_rise.or(&er);
                    sc.gqr_one = sc.gqr_one.or(&qr);
                }
                Direction::Fall => {
                    sc.ger_fall = sc.ger_fall.or(&er);
                    sc.gqr_zero = sc.gqr_zero.or(&qr);
                }
            }
            sc.er.insert(t, er);
            sc.qr.insert(t, qr);
            sc.qr_restricted.insert(t, qrr);
        }
        sc
    }

    /// Total number of cubes across all current place covers — the `#cubes`
    /// statistic of Table VIII.
    pub fn total_cubes(&self) -> usize {
        self.place_cover.iter().map(Cover::cube_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_stg::benchmarks;

    #[test]
    fn fig1_conflict_detected_and_csc_proved() {
        let stg = benchmarks::running_example();
        let ctx = StructuralContext::build(&stg).unwrap();
        // The USC conflict (p0 vs the mode-2 waiting place) survives
        // refinement …
        let conflicts = ctx.conflicts();
        assert!(!conflicts.is_empty(), "expected surviving conflicts");
        // … but the CSC verdict is positive (Theorem 15).
        match ctx.csc_verdict() {
            CscVerdict::CscHolds => {}
            v => panic!("expected CscHolds, got {v:?}"),
        }
    }

    #[test]
    fn fig5_refinement_removes_overestimation() {
        let stg = benchmarks::fig5_example();
        let ctx = StructuralContext::build(&stg).unwrap();
        let pb = stg.net().place_by_name("pb").unwrap();
        // After refinement the unreachable code (r,x,z,y) = 1110 is gone.
        let bad: Bits = [true, true, true, false].into_iter().collect();
        assert!(
            !ctx.place_cover[pb.index()].contains_vertex(&bad),
            "refinement must exclude the unreachable code, cover = {}",
            ctx.place_cover[pb.index()]
        );
        assert!(ctx.refinement_rounds > 0);
    }

    #[test]
    fn conflict_free_benchmarks_report_usc() {
        for stg in [
            benchmarks::half_handshake(),
            benchmarks::converter(),
            si_stg::generators::clatch(3),
        ] {
            let ctx = StructuralContext::build(&stg).unwrap();
            assert_eq!(
                ctx.csc_verdict(),
                CscVerdict::UscHolds,
                "{} should be conflict-free",
                stg.name()
            );
        }
        // The 2-stage sequencer returns to the all-zero code once per
        // stage: a USC conflict between input-only markings, CSC intact.
        let stg = si_stg::generators::sequencer(2);
        let ctx = StructuralContext::build(&stg).unwrap();
        assert_eq!(ctx.csc_verdict(), CscVerdict::CscHolds);
    }

    #[test]
    fn vme_raw_is_rejected_by_csc_analysis() {
        let stg = benchmarks::vme_read_raw();
        let ctx = StructuralContext::build(&stg).unwrap();
        match ctx.csc_verdict() {
            CscVerdict::Unknown { places } => assert!(!places.is_empty()),
            v => panic!("raw VME must not pass the CSC check, got {v:?}"),
        }
    }

    #[test]
    fn er_covers_are_safe_overapproximations() {
        // For every benchmark and every transition: the structural ER cover
        // contains every reachable code of the true excitation region and
        // no reachable code outside it (Property 13 under refinement).
        for stg in benchmarks::synthesizable_suite() {
            let ctx = StructuralContext::build(&stg).unwrap();
            let rg = si_petri::ReachabilityGraph::build(stg.net(), 1_000_000).unwrap();
            let enc = si_stg::StateEncoding::compute(&stg, &rg).unwrap();
            for t in stg.net().transitions() {
                let cover = ctx.er_cover(t);
                for s in rg.states() {
                    let in_er = rg.successors(s).iter().any(|&(u, _)| u == t);
                    if in_er {
                        assert!(
                            cover.contains_vertex(enc.code(s)),
                            "{}: ER({}) must cover code {}",
                            stg.name(),
                            stg.transition_display(t),
                            enc.code(s)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn qr_covers_contain_true_quiescent_codes() {
        // Property 12.2: every QR marking is covered by the QR cover.
        for stg in benchmarks::synthesizable_suite() {
            let ctx = StructuralContext::build(&stg).unwrap();
            let rg = si_petri::ReachabilityGraph::build(stg.net(), 1_000_000).unwrap();
            let enc = si_stg::StateEncoding::compute(&stg, &rg).unwrap();
            for sig in stg.signals() {
                let regions = si_stg::SignalRegions::compute(&stg, &rg, sig);
                for (i, &t) in regions.transitions.iter().enumerate() {
                    let cover = ctx.qr_cover(t);
                    for si in regions.qr[i].iter_ones() {
                        let code = enc.code(si_petri::StateId(si as u32));
                        assert!(
                            cover.contains_vertex(code),
                            "{}: QR({}) missing code {}",
                            stg.name(),
                            stg.transition_display(t),
                            code
                        );
                    }
                }
            }
        }
    }
}
