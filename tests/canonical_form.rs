//! Canonical `.g` form: parse→canonicalize→parse is a byte-level fixpoint,
//! and permuting the declaration order of a `.g` file never changes the
//! canonical output. This is the normal form the serving layer hashes, so
//! any drift here silently splits the artifact cache.

use proptest::prelude::*;
use sisyn::stg::benchmarks;
use sisyn::stg::{canonical_g, parse_g, write_g};

#[test]
fn canonical_is_a_fixpoint_on_every_benchmark() {
    for stg in benchmarks::synthesizable_suite() {
        let canon = canonical_g(&stg);
        let back = parse_g(&canon).unwrap_or_else(|e| panic!("{}: {e}\n{canon}", stg.name()));
        assert_eq!(
            canonical_g(&back),
            canon,
            "{}: canonicalize is not idempotent through a reparse",
            stg.name()
        );
        assert_eq!(stg.signal_count(), back.signal_count(), "{}", stg.name());
        assert_eq!(
            stg.net().transition_count(),
            back.net().transition_count(),
            "{}",
            stg.name()
        );
        assert_eq!(
            stg.net().place_count(),
            back.net().place_count(),
            "{}",
            stg.name()
        );
    }
}

/// Deterministically shuffles `items` in place with an xorshift stream.
fn shuffle<T>(items: &mut [T], seed: &mut u64) {
    let mut next = || {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        *seed
    };
    for i in (1..items.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// Rewrites a `.g` text with every freely-ordered element shuffled: tokens
/// inside `.inputs`/`.outputs`/`.internal` lines, the graph lines
/// themselves, the arc targets within each graph line, and the marking
/// tokens. Parsing must yield the same model, so the canonical form must
/// not move.
fn permute_g(text: &str, mut seed: u64) -> String {
    let mut head: Vec<String> = Vec::new();
    let mut graph: Vec<String> = Vec::new();
    let mut tail: Vec<String> = Vec::new();
    let mut in_graph = false;
    for line in text.lines() {
        if line == ".graph" {
            in_graph = true;
            head.push(line.to_string());
        } else if line.starts_with(".marking") || line == ".end" {
            in_graph = false;
            let shuffled = if let Some(rest) = line.strip_prefix(".marking") {
                let inner = rest.trim().trim_start_matches('{').trim_end_matches('}');
                let mut toks: Vec<&str> = inner.split_whitespace().collect();
                shuffle(&mut toks, &mut seed);
                format!(".marking {{ {} }}", toks.join(" "))
            } else {
                line.to_string()
            };
            tail.push(shuffled);
        } else if in_graph {
            let mut toks: Vec<&str> = line.split_whitespace().collect();
            // The first token is the arc source; only targets are free.
            shuffle(&mut toks[1..], &mut seed);
            graph.push(toks.join(" "));
        } else if line.starts_with(".inputs")
            || line.starts_with(".outputs")
            || line.starts_with(".internal")
        {
            let mut toks: Vec<&str> = line.split_whitespace().collect();
            shuffle(&mut toks[1..], &mut seed);
            head.push(toks.join(" "));
        } else {
            head.push(line.to_string());
        }
    }
    shuffle(&mut graph, &mut seed);
    let mut out = head;
    out.extend(graph);
    out.extend(tail);
    out.join("\n") + "\n"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn permuted_declaration_order_is_canonically_invariant(seed in 1u64..u64::MAX, pick in 0usize..8) {
        let suite = benchmarks::synthesizable_suite();
        let stg = &suite[pick % suite.len()];
        let baseline = canonical_g(stg);
        let permuted = permute_g(&write_g(stg), seed);
        let reparsed = parse_g(&permuted)
            .unwrap_or_else(|e| panic!("{}: {e}\n{permuted}", stg.name()));
        prop_assert_eq!(canonical_g(&reparsed), baseline);
    }
}
