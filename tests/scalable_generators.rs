//! Sanity and scaling of the generated workloads (Tables VI/VII inputs).

use sisyn::prelude::*;
use sisyn::stg::generators;

#[test]
fn clatch_structural_synthesis_scales_far_beyond_the_oracle() {
    // n = 40 → 2^41 ≈ 2.2e12 markings. Structural synthesis must succeed.
    let stg = generators::clatch(40);
    let syn = synthesize(&stg, &SynthesisOptions::default()).unwrap();
    // z = C(x0..x39): set = all inputs high, reset = all low.
    let imp = &syn.results[0].implementation;
    let (set, reset) = match &imp.kind {
        ImplKind::GcLatch { set, reset } => (set.clone(), reset.clone()),
        ImplKind::CLatch { set, reset } => (set[0].clone(), reset[0].clone()),
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(set.literal_count(), 40);
    assert_eq!(reset.literal_count(), 40);
}

#[test]
fn philosophers_synthesize_without_free_choice() {
    let stg = generators::philosophers(4);
    assert!(!stg.net().is_free_choice());
    let syn = synthesize(&stg, &SynthesisOptions::default()).unwrap();
    assert_eq!(syn.results.len(), 4); // one done_i per philosopher
    assert!(verify_circuit(&stg, &syn.circuit).is_ok());
}

#[test]
fn muller_pipeline_synthesizes_and_verifies() {
    for n in [2usize, 4, 6] {
        let stg = generators::muller_pipeline(n);
        let syn = synthesize(&stg, &SynthesisOptions::default()).unwrap();
        assert_eq!(syn.results.len(), n);
        let report = verify_circuit(&stg, &syn.circuit);
        assert!(report.is_ok(), "muller({n}): {:?}", &report.violations[..1]);
    }
}

#[test]
fn generator_families_grow_linearly_in_stg_size() {
    for n in [2usize, 4, 8] {
        let a = generators::burst(n);
        let b = generators::burst(2 * n);
        assert!(b.net().place_count() <= 2 * a.net().place_count() + 8);
        assert!(b.net().transition_count() <= 2 * a.net().transition_count() + 8);
    }
}

#[test]
fn selector_and_sequencer_synthesize() {
    for stg in [generators::selector(4), generators::sequencer(4)] {
        let syn = synthesize(&stg, &SynthesisOptions::default()).unwrap();
        assert!(verify_circuit(&stg, &syn.circuit).is_ok(), "{}", stg.name());
    }
}
