//! Cross-crate property tests: random free-choice STGs keep every layer of
//! the flow honest.

use proptest::prelude::*;
use sisyn::prelude::*;
use sisyn::stg::{Direction, SignalKind, Stg};

/// Builds a random live/safe/consistent free-choice STG: a ring of
/// handshakes with optional parallel sections.
fn build_random_stg(shape: &[u8]) -> Stg {
    let mut b = Stg::builder("random");
    let n = shape.len().max(1);
    let mut prev: Option<si_petri::TransId> = None;
    let mut first = None;
    for (i, &kind) in shape.iter().enumerate().take(n) {
        let r = b.add_signal(format!("r{i}"), SignalKind::Input);
        let a = b.add_signal(format!("a{i}"), SignalKind::Output);
        let rp = b.add_transition(r, Direction::Rise);
        let ap = b.add_transition(a, Direction::Rise);
        let rm = b.add_transition(r, Direction::Fall);
        let am = b.add_transition(a, Direction::Fall);
        match kind % 3 {
            0 => {
                // sequential handshake
                b.arc(rp, ap);
                b.arc(ap, rm);
                b.arc(rm, am);
            }
            1 => {
                // output concurrent with the release
                b.arc(rp, ap);
                b.arc(rp, rm); // hmm? r+ then r- direct, a+ in parallel
                b.arc(ap, am);
                b.arc(rm, am);
            }
            _ => {
                // four-phase with early acknowledge
                b.arc(rp, ap);
                b.arc(ap, rm);
                b.arc(rm, am);
            }
        }
        if let Some(p) = prev {
            b.arc(p, rp);
        } else {
            first = Some(rp);
        }
        prev = Some(am);
    }
    let p0 = b.arc(prev.unwrap(), first.unwrap());
    b.mark_place(p0);
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_stgs_synthesize_and_verify(shape in proptest::collection::vec(0u8..3, 1..4)) {
        let stg = build_random_stg(&shape);
        let rg = ReachabilityGraph::build(stg.net(), 100_000).expect("safe");
        prop_assume!(sisyn::stg::StateEncoding::compute(&stg, &rg).is_ok());
        let syn = match synthesize(&stg, &SynthesisOptions::default()) {
            Ok(s) => s,
            Err(sisyn::core::SynthesisError::CscViolationPossible { .. }) => return Ok(()),
            Err(e) => panic!("unexpected synthesis failure: {e}"),
        };
        let report = verify_circuit(&stg, &syn.circuit);
        prop_assert!(report.is_ok(), "{:?}", &report.violations[..report.violations.len().min(2)]);
    }

    #[test]
    fn structural_never_beats_oracle_on_csc(shape in proptest::collection::vec(0u8..3, 1..4)) {
        // If the structural verdict accepts, the oracle must agree.
        let stg = build_random_stg(&shape);
        let rg = ReachabilityGraph::build(stg.net(), 100_000).expect("safe");
        prop_assume!(sisyn::stg::StateEncoding::compute(&stg, &rg).is_ok());
        let enc = sisyn::stg::StateEncoding::compute(&stg, &rg).unwrap();
        let coding = sisyn::stg::CodingAnalysis::compute(&stg, &rg, &enc);
        let ctx = StructuralContext::build(&stg).unwrap();
        if !matches!(ctx.csc_verdict(), CscVerdict::Unknown { .. }) {
            prop_assert!(coding.has_csc(), "structural CSC accepted a violating STG");
        }
    }

    #[test]
    fn minimization_stages_monotone(shape in proptest::collection::vec(0u8..3, 1..3)) {
        let stg = build_random_stg(&shape);
        let mut prev = usize::MAX;
        for n in 0..=4 {
            let opts = SynthesisOptions {
                architecture: Architecture::PerRegion,
                stages: MinimizeStages::stage(n),
                ..Default::default()
            };
            match synthesize(&stg, &opts) {
                Ok(s) => {
                    prop_assert!(s.literal_area <= prev);
                    prev = s.literal_area;
                }
                Err(sisyn::core::SynthesisError::CscViolationPossible { .. }) => return Ok(()),
                Err(e) => panic!("unexpected: {e}"),
            }
        }
    }
}
