//! The `Engine` session API is a **pure reorganization**: every pipeline
//! method must produce bit-identical results to the legacy free functions
//! across the benchmark suite, for synthesis, the state-based baseline,
//! functional verification and conformance checking — and the `auto`
//! minimizer must never lose literals to the espresso baseline.

use sisyn::prelude::*;
use sisyn::stg::benchmarks;

#[test]
fn engine_synthesis_bit_identical_to_free_function() {
    for stg in benchmarks::synthesizable_suite() {
        let engine = Engine::new(&stg);
        for arch in [
            Architecture::ComplexGate,
            Architecture::ExcitationFunction,
            Architecture::PerRegion,
        ] {
            let opts = SynthesisOptions {
                architecture: arch,
                ..Default::default()
            };
            let via_engine = engine.synthesize_with(&opts).unwrap();
            let via_free = synthesize(&stg, &opts).unwrap();
            assert_eq!(
                via_engine.circuit,
                via_free.circuit,
                "{} under {arch:?}: engine and free-function circuits differ",
                stg.name()
            );
            assert_eq!(via_engine.literal_area, via_free.literal_area);
            assert_eq!(via_engine.csc, via_free.csc);
        }
    }
}

#[test]
fn engine_baseline_bit_identical_to_free_function() {
    for stg in benchmarks::synthesizable_suite() {
        let engine = Engine::new(&stg).cap(1_000_000);
        for flavor in [
            BaselineFlavor::ComplexGateExact,
            BaselineFlavor::ExcitationExact,
        ] {
            let via_engine = engine.synthesize_state_based(flavor).unwrap();
            let via_free = synthesize_state_based(&stg, flavor, 1_000_000).unwrap();
            assert_eq!(
                via_engine.circuit,
                via_free.circuit,
                "{} under {flavor:?}: engine and free-function baselines differ",
                stg.name()
            );
            assert_eq!(via_engine.states, via_free.states);
        }
    }
}

#[test]
fn engine_verification_bit_identical_to_free_function() {
    for stg in benchmarks::synthesizable_suite() {
        let engine = Engine::new(&stg);
        let syn = engine.synthesize().unwrap();

        let via_engine = engine.verify(&syn.circuit).unwrap();
        let via_free = verify_circuit(&stg, &syn.circuit);
        assert_eq!(via_engine.violations, via_free.violations, "{}", stg.name());
        assert_eq!(via_engine.states_checked, via_free.states_checked);

        let conf_engine = engine.check_conformance(&syn.circuit).unwrap();
        let conf_free = check_conformance(&stg, &syn.circuit, 4_000_000).unwrap();
        assert_eq!(conf_engine.failures, conf_free.failures, "{}", stg.name());
        assert_eq!(conf_engine.states_explored, conf_free.states_explored);
    }
}

#[test]
fn engine_conformance_keeps_probe_headroom_under_small_caps() {
    // A session cap smaller than the specification's state space must not
    // blind the conformance check: like the free function, the probe
    // falls back to the 4M headroom and the product is explored up to the
    // session cap (partial, tagged `interrupted` with a cap-exceeded
    // reason) instead of returning an empty inconclusive report.
    let stg = sisyn::stg::generators::clatch(5); // 64 states
    let full = Engine::new(&stg);
    let syn = full.synthesize().unwrap();

    let small = Engine::new(&stg).cap(10);
    let via_engine = small.check_conformance(&syn.circuit).unwrap();
    let via_free = check_conformance(&stg, &syn.circuit, 10).unwrap();
    assert_eq!(via_engine.failures, via_free.failures);
    assert_eq!(via_engine.states_explored, via_free.states_explored);
    assert!(via_engine.states_explored > 0, "probe fallback must run");
    assert!(
        !via_engine.is_conclusive(),
        "a capped product exploration is a partial verdict"
    );
    assert_eq!(
        via_engine.interrupted.map(|i| i.reason),
        Some(InterruptReason::CapExceeded)
    );
    // The session cache stays at the session cap: reachability still fails.
    assert!(small.reachability().is_err());
    assert_eq!(small.reach_build_count(), 0); // failed builds are not counted
}

#[test]
fn engine_resolve_csc_matches_free_function() {
    let raw = benchmarks::vme_read_raw();
    let engine = Engine::new(&raw);
    let (fixed_engine, plan_engine) = engine.resolve_csc(50_000).expect("resolvable");
    let (fixed_free, plan_free) = resolve_csc(&raw, 50_000).expect("resolvable");
    assert_eq!(plan_engine, plan_free);
    assert_eq!(fixed_engine.signal_count(), fixed_free.signal_count());
    assert_eq!(write_g(&fixed_engine), write_g(&fixed_free));
}

#[test]
fn auto_minimizer_never_worse_than_espresso_on_benchmarks() {
    // The acceptance gate: per benchmark and architecture, synthesizing
    // with `auto` never yields more literals than `espresso` (auto keeps
    // the espresso result as its floor per cover).
    for stg in benchmarks::synthesizable_suite() {
        let engine = Engine::new(&stg);
        for arch in [Architecture::ComplexGate, Architecture::ExcitationFunction] {
            let area_of = |minimizer| {
                engine
                    .synthesize_with(&SynthesisOptions {
                        architecture: arch,
                        minimizer,
                        ..Default::default()
                    })
                    .unwrap()
                    .literal_area
            };
            let auto = area_of(MinimizerChoice::Auto);
            let espresso = area_of(MinimizerChoice::Espresso);
            assert!(
                auto <= espresso,
                "{} under {arch:?}: auto {auto} > espresso {espresso}",
                stg.name()
            );
        }
    }
}

#[test]
fn every_minimizer_backend_passes_the_baseline_monotonicity_filter() {
    // The minimizer knob also reaches the state-based baselines, whose
    // region covers pass through the monotonicity shrink loop of
    // `region_cover`; every backend must come out the other side with a
    // verifiably speed-independent circuit under both flavors.
    for stg in benchmarks::synthesizable_suite() {
        for minimizer in MinimizerChoice::ALL {
            let engine = Engine::new(&stg).cap(1_000_000).minimizer(minimizer);
            for flavor in [
                BaselineFlavor::ComplexGateExact,
                BaselineFlavor::ExcitationExact,
            ] {
                let base = engine
                    .synthesize_state_based(flavor)
                    .unwrap_or_else(|e| panic!("{} {flavor:?} {minimizer}: {e}", stg.name()));
                let report = engine.verify(&base.circuit).unwrap();
                assert!(
                    report.is_ok(),
                    "{} {flavor:?} {minimizer}: {:?}",
                    stg.name(),
                    &report.violations[..report.violations.len().min(3)]
                );
            }
        }
    }
}

#[test]
fn every_minimizer_backend_synthesizes_and_verifies_the_suite() {
    // All four backends produce verifiably speed-independent circuits on
    // the complex-gate architecture (the one whose covers they minimize).
    for stg in benchmarks::synthesizable_suite() {
        let engine = Engine::new(&stg);
        for minimizer in MinimizerChoice::ALL {
            let syn = engine
                .synthesize_with(&SynthesisOptions {
                    architecture: Architecture::ComplexGate,
                    minimizer,
                    ..Default::default()
                })
                .unwrap_or_else(|e| panic!("{} with {minimizer}: {e}", stg.name()));
            let report = engine.verify(&syn.circuit).unwrap();
            assert!(
                report.is_ok(),
                "{} with {minimizer}: {:?}",
                stg.name(),
                &report.violations[..report.violations.len().min(3)]
            );
        }
    }
}
