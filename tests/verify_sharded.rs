//! The verify-heavy suite at 4 explorer shards: every reachability-backed
//! check of the pipeline — graph build, speed-independence verification,
//! conformance product — run on the sharded explorer across the large
//! benchmark set, pinned against the sequential engine.
//!
//! These tests repeat the most expensive verification workloads of the
//! repository, so they are `#[ignore]`d by default and run explicitly by
//! the dedicated CI step (`cargo test --test verify_sharded -- --ignored`).

use sisyn::prelude::*;
use sisyn::stg::generators;

/// The large benchmark set (mirrors `si_bench::large_set()`, which this
/// crate cannot depend on).
fn large_set() -> Vec<sisyn::stg::Stg> {
    vec![
        generators::clatch(8),
        generators::clatch(12),
        generators::burst(6),
        generators::burst(8),
        generators::muller_pipeline(8),
        generators::muller_pipeline(12),
        generators::philosophers(5),
        generators::philosophers(7),
        generators::sequencer(10),
        generators::selector(8),
    ]
}

#[test]
#[ignore = "verify-heavy sharded suite; CI runs it with -- --ignored"]
fn large_set_pipeline_identical_at_4_shards() {
    for stg in large_set() {
        let seq = Engine::new(&stg).cap(2_000_000);
        let par = Engine::new(&stg).cap(2_000_000).shards(4);
        let syn = match seq.synthesize() {
            Ok(s) => s,
            Err(_) => continue, // not structurally synthesizable — skip
        };

        // The sharded graph is bit-identical, so the encodings agree too.
        let rg_seq = seq.reachability().unwrap();
        let rg_par = par.reachability().unwrap();
        assert_eq!(rg_seq.state_count(), rg_par.state_count(), "{}", stg.name());
        assert_eq!(rg_seq.edge_count(), rg_par.edge_count(), "{}", stg.name());

        // Speed-independence verification: identical violation lists.
        let v_seq = seq.verify(&syn.circuit).unwrap();
        let v_par = par.verify(&syn.circuit).unwrap();
        assert_eq!(v_seq.violations, v_par.violations, "{}", stg.name());
        assert_eq!(v_seq.states_checked, v_par.states_checked, "{}", stg.name());
        assert!(
            v_seq.is_ok(),
            "{}: synthesized circuit must verify",
            stg.name()
        );

        // Conformance: identical verdict and (conformant ⇒ exhaustive)
        // identical product size.
        let c_seq = seq.check_conformance(&syn.circuit).unwrap();
        let c_par = par.check_conformance(&syn.circuit).unwrap();
        assert_eq!(c_seq.is_ok(), c_par.is_ok(), "{}", stg.name());
        assert!(
            c_seq.is_ok(),
            "{}: synthesized circuit must conform",
            stg.name()
        );
        assert_eq!(
            c_seq.states_explored,
            c_par.states_explored,
            "{}",
            stg.name()
        );
    }
}

#[test]
#[ignore = "verify-heavy sharded suite; CI runs it with -- --ignored"]
fn large_set_counterexamples_replay_at_4_shards() {
    for stg in large_set() {
        let engine = Engine::new(&stg).cap(2_000_000).shards(4);
        let syn = match engine.synthesize() {
            Ok(s) => s,
            Err(_) => continue,
        };
        // Sabotage: pin the first implementation permanently excited.
        let mut bad = syn.circuit.clone();
        bad.implementations[0].kind = ImplKind::Combinational {
            cover: Cover::universe(stg.signal_count()),
            inverted: false,
        };

        let report = engine.verify(&bad).unwrap();
        if !report.is_ok() {
            let trace = report
                .trace
                .as_ref()
                .expect("failing verify carries a trace");
            let net = stg.net();
            let mut m = net.initial_marking();
            for &t in trace {
                assert!(net.is_enabled(&m, t), "{}: dead trace step", stg.name());
                m = net.fire(&m, t);
            }
            let rg = engine.reachability().unwrap();
            assert_eq!(
                rg.state_of(&m),
                Some(report.violations[0].at_state()),
                "{}: verify trace must reach the violating state",
                stg.name()
            );
        }

        let conf = engine.check_conformance(&bad).unwrap();
        assert!(
            !conf.is_ok(),
            "{}: sabotage must break conformance",
            stg.name()
        );
        let trace = conf
            .trace
            .as_ref()
            .expect("failing conformance carries a trace");
        let net = stg.net();
        let mut m = net.initial_marking();
        for &t in trace {
            assert!(
                net.is_enabled(&m, t),
                "{}: dead conformance trace step",
                stg.name()
            );
            m = net.fire(&m, t);
        }
    }
}
