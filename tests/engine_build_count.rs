//! The artifact-cache guarantee, pinned by the build-count hook: an
//! `Engine` running the whole pipeline — synthesize, state-based baseline,
//! functional verification, conformance — constructs the reachability
//! graph **exactly once**.
//!
//! This test is deliberately alone in its binary: the hook
//! (`ReachabilityGraph::build_count`) is process-wide, and a sibling test
//! building graphs concurrently would make the delta assertion racy.

use sisyn::prelude::*;

#[test]
fn pipeline_builds_the_reachability_graph_exactly_once() {
    let stg = sisyn::stg::benchmarks::vme_read_csc();
    let engine = Engine::new(&stg).cap(500_000);

    let before = ReachabilityGraph::build_count();
    let syn = engine.synthesize().expect("synthesizable");
    assert_eq!(
        ReachabilityGraph::build_count(),
        before,
        "structural synthesis must not touch the state graph"
    );

    let functional = engine.verify(&syn.circuit).expect("within cap");
    assert!(functional.is_ok());
    let conformance = engine.check_conformance(&syn.circuit).expect("within cap");
    assert!(conformance.is_ok());
    let baseline = engine
        .synthesize_state_based(BaselineFlavor::ExcitationExact)
        .expect("within cap");
    assert!(baseline.literal_area > 0);

    assert_eq!(
        ReachabilityGraph::build_count() - before,
        1,
        "verify + conformance + baseline must share one cached graph"
    );
    assert_eq!(engine.reach_build_count(), 1);

    // The legacy free functions, by contrast, rebuild per call: the same
    // three reachability-backed steps cost three constructions.
    let before_legacy = ReachabilityGraph::build_count();
    let _ = verify_circuit(&stg, &syn.circuit);
    let _ = check_conformance(&stg, &syn.circuit, 500_000);
    let _ = synthesize_state_based(&stg, BaselineFlavor::ExcitationExact, 500_000);
    assert_eq!(ReachabilityGraph::build_count() - before_legacy, 3);
}
