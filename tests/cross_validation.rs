//! Cross-validation: every structural analysis agrees with (or safely
//! over-approximates) the behavioural oracle on the whole benchmark suite.

use sisyn::prelude::*;
use sisyn::stg::{
    benchmarks, next_behavioural, semimodularity_violations, SignalRegions, StateEncoding,
};

fn suite() -> Vec<sisyn::stg::Stg> {
    benchmarks::synthesizable_suite()
}

#[test]
fn structural_adjacency_matches_behaviour() {
    for stg in suite() {
        let analysis = StgAnalysis::analyze(&stg).expect("consistent");
        let rg = ReachabilityGraph::build(stg.net(), 1_000_000).unwrap();
        for t in stg.net().transitions() {
            let structural = analysis.next_of(t).to_vec();
            let behavioural = next_behavioural(&stg, &rg, t);
            assert_eq!(
                structural,
                behavioural,
                "{}: next({}) mismatch",
                stg.name(),
                stg.transition_display(t)
            );
        }
    }
}

#[test]
fn structural_concurrency_is_exact_on_fc_suite() {
    for stg in suite() {
        if !stg.net().is_free_choice() {
            continue; // exactness is guaranteed for live-safe FC only
        }
        let analysis = StgAnalysis::analyze(&stg).expect("consistent");
        let rg = ReachabilityGraph::build(stg.net(), 1_000_000).unwrap();
        for p in stg.net().places() {
            for t in stg.net().transitions() {
                assert_eq!(
                    analysis.cr.place_transition(p, t),
                    rg.place_transition_concurrent(stg.net(), p, t),
                    "{}: ({}, {})",
                    stg.name(),
                    stg.net().place_name(p),
                    stg.transition_display(t)
                );
            }
        }
    }
}

#[test]
fn region_approximations_cover_ground_truth() {
    // ER and QR covers must contain every reachable code of the exact
    // regions (safety of Properties 12/13 after refinement).
    for stg in suite() {
        let ctx = StructuralContext::build(&stg).unwrap();
        let rg = ReachabilityGraph::build(stg.net(), 1_000_000).unwrap();
        let enc = StateEncoding::compute(&stg, &rg).unwrap();
        for sig in stg.signals() {
            let regions = SignalRegions::compute(&stg, &rg, sig);
            for (i, &t) in regions.transitions.iter().enumerate() {
                let er_cover = ctx.er_cover(t);
                for s in regions.er[i].iter_ones() {
                    let code = enc.code(sisyn::petri::StateId(s as u32));
                    assert!(
                        er_cover.contains_vertex(code),
                        "{}: ER({}) misses {}",
                        stg.name(),
                        stg.transition_display(t),
                        code
                    );
                }
                let qr_cover = ctx.qr_cover(t);
                for s in regions.qr[i].iter_ones() {
                    let code = enc.code(sisyn::petri::StateId(s as u32));
                    assert!(
                        qr_cover.contains_vertex(code),
                        "{}: QR({}) misses {}",
                        stg.name(),
                        stg.transition_display(t),
                        code
                    );
                }
            }
        }
    }
}

#[test]
fn er_covers_never_hit_foreign_reachable_codes() {
    // Property 13: no reachable code outside ER(t) is covered by C(t) —
    // this is the strong form that holds when the benchmark is free of
    // relevant conflicts; where USC shadows exist, the covered foreign code
    // must at least share the enabled-signal semantics (CSC). We assert the
    // weaker, always-sound form: C(t) never covers a reachable code whose
    // markings all *disagree* with ER(t) on the implied next value.
    for stg in suite() {
        let ctx = StructuralContext::build(&stg).unwrap();
        let rg = ReachabilityGraph::build(stg.net(), 1_000_000).unwrap();
        let enc = StateEncoding::compute(&stg, &rg).unwrap();
        for t in stg.net().transitions() {
            if !stg.signal_kind(stg.signal_of(t)).is_synthesized() {
                continue;
            }
            let cover = ctx.er_cover(t);
            let sig = stg.signal_of(t);
            let target = stg.direction_of(t).target_value();
            for s in rg.states() {
                if !cover.contains_vertex(enc.code(s)) {
                    continue;
                }
                // covered state: implied next value of sig must match the
                // transition's direction (same excitation semantics).
                let implied = rg
                    .successors(s)
                    .iter()
                    .find(|&&(u, _)| stg.signal_of(u) == sig)
                    .map(|&(u, _)| stg.direction_of(u).target_value())
                    .unwrap_or_else(|| enc.value(s, sig));
                assert_eq!(
                    implied,
                    target,
                    "{}: C({}) covers state {} with wrong implied value",
                    stg.name(),
                    stg.transition_display(t),
                    s.0
                );
            }
        }
    }
}

#[test]
fn csc_verdict_matches_oracle() {
    // Structural CSC analysis must accept everything the oracle accepts
    // (on this suite) and reject what it rejects.
    for stg in suite() {
        let ctx = StructuralContext::build(&stg).unwrap();
        let rg = ReachabilityGraph::build(stg.net(), 1_000_000).unwrap();
        let enc = StateEncoding::compute(&stg, &rg).unwrap();
        let coding = sisyn::stg::CodingAnalysis::compute(&stg, &rg, &enc);
        let verdict = ctx.csc_verdict();
        assert!(
            coding.has_csc(),
            "{}: suite member must satisfy CSC",
            stg.name()
        );
        assert!(
            !matches!(verdict, CscVerdict::Unknown { .. }),
            "{}: structural CSC too conservative: {verdict:?}",
            stg.name()
        );
    }
    // Negative case.
    let raw = benchmarks::vme_read_raw();
    let ctx = StructuralContext::build(&raw).unwrap();
    assert!(matches!(ctx.csc_verdict(), CscVerdict::Unknown { .. }));
}

#[test]
fn suite_is_semimodular() {
    for stg in suite() {
        let rg = ReachabilityGraph::build(stg.net(), 1_000_000).unwrap();
        assert!(
            semimodularity_violations(&stg, &rg).is_empty(),
            "{}",
            stg.name()
        );
    }
}

#[test]
fn commoner_liveness_matches_behaviour() {
    // Structural liveness (Commoner) agrees with the behavioural oracle on
    // every free-choice benchmark.
    for stg in suite() {
        if !stg.net().is_free_choice() {
            continue;
        }
        let verdict = check_live_safe_fc(stg.net());
        let rg = ReachabilityGraph::build(stg.net(), 1_000_000).unwrap();
        assert_eq!(
            verdict,
            sisyn::petri::StructuralCheck::Ok,
            "{}: structural liveness check must accept a live benchmark",
            stg.name()
        );
        assert!(rg.is_live(stg.net()), "{}", stg.name());
    }
}

#[test]
fn random_walk_simulation_agrees_with_verification() {
    // The hazard simulator finds nothing on verified circuits.
    for stg in suite().into_iter().take(6) {
        let syn = synthesize(&stg, &SynthesisOptions::default()).unwrap();
        assert!(verify_circuit(&stg, &syn.circuit).is_ok(), "{}", stg.name());
        let outcome = random_walks(&stg, &syn.circuit, 4, 2000, 1);
        assert!(outcome.is_clean(), "{}: {outcome:?}", stg.name());
    }
}

#[test]
fn verilog_export_covers_every_synthesized_signal() {
    for stg in suite() {
        let syn = synthesize(&stg, &SynthesisOptions::default()).unwrap();
        let v = to_verilog(&stg, &syn.circuit);
        for r in &syn.results {
            let name = stg.signal_name(r.signal);
            assert!(
                v.contains(&format!("assign {name}")) || v.contains(&format!("u_{name}")),
                "{}: {name} missing from the netlist",
                stg.name()
            );
        }
    }
}

#[test]
fn dot_exports_are_wellformed() {
    for stg in suite().into_iter().take(4) {
        let dot = stg_to_dot(&stg);
        assert!(dot.starts_with("digraph"));
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}

#[test]
fn sharded_reachability_agrees_across_the_suite() {
    // The sharded engine must be a drop-in replacement for every
    // reachability-based oracle: identical graph on the whole benchmark
    // suite and an identical verification report through
    // `verify_circuit_with`.
    for stg in suite() {
        let seq = ReachabilityGraph::build(stg.net(), 1_000_000).unwrap();
        let par =
            ReachabilityGraph::build_with(stg.net(), ReachOptions::with_cap(1_000_000).shards(4))
                .unwrap();
        assert_eq!(seq.state_count(), par.state_count(), "{}", stg.name());
        assert_eq!(seq.edge_count(), par.edge_count(), "{}", stg.name());
        for s in seq.states() {
            assert_eq!(seq.marking(s), par.marking(s), "{}", stg.name());
            assert_eq!(seq.successors(s), par.successors(s), "{}", stg.name());
        }
    }
    let stg = benchmarks::vme_read_csc();
    let syn = synthesize(&stg, &SynthesisOptions::default()).unwrap();
    let report = sisyn::verify::verify_circuit_with(
        &stg,
        &syn.circuit,
        ReachOptions::with_cap(1_000_000).shards(4),
    )
    .unwrap();
    assert!(report.is_ok());
}
