//! End-to-end synthesis correctness: every benchmark, every architecture,
//! every minimization stage — the resulting circuit is functionally
//! correct, monotonic and conformant (hazard-free) against ground truth,
//! for both the structural flow and the state-based baseline.

use sisyn::prelude::*;
use sisyn::stg::benchmarks;

#[test]
fn structural_flow_verifies_everywhere() {
    for stg in benchmarks::synthesizable_suite() {
        for arch in [
            Architecture::ComplexGate,
            Architecture::ExcitationFunction,
            Architecture::PerRegion,
        ] {
            for stage in 0..=4 {
                let opts = SynthesisOptions {
                    architecture: arch,
                    stages: MinimizeStages::stage(stage),
                    ..Default::default()
                };
                let syn = synthesize(&stg, &opts)
                    .unwrap_or_else(|e| panic!("{} {arch:?} M{stage}: {e}", stg.name()));
                let report = verify_circuit(&stg, &syn.circuit);
                assert!(
                    report.is_ok(),
                    "{} {arch:?} M{stage}: {:?}",
                    stg.name(),
                    &report.violations[..report.violations.len().min(3)]
                );
            }
        }
    }
}

#[test]
fn structural_flow_is_conformant() {
    for stg in benchmarks::synthesizable_suite() {
        let syn = synthesize(&stg, &SynthesisOptions::default()).unwrap();
        let conform = check_conformance(&stg, &syn.circuit, 2_000_000).unwrap();
        assert!(
            conform.is_ok(),
            "{}: {:?}",
            stg.name(),
            &conform.failures[..conform.failures.len().min(3)]
        );
    }
}

#[test]
fn baseline_flow_verifies_everywhere() {
    for stg in benchmarks::synthesizable_suite() {
        for flavor in [
            BaselineFlavor::ComplexGateExact,
            BaselineFlavor::ExcitationExact,
        ] {
            let syn = synthesize_state_based(&stg, flavor, 1_000_000)
                .unwrap_or_else(|e| panic!("{} {flavor:?}: {e}", stg.name()));
            let report = verify_circuit(&stg, &syn.circuit);
            assert!(
                report.is_ok(),
                "{} {flavor:?}: {:?}",
                stg.name(),
                &report.violations[..report.violations.len().min(3)]
            );
        }
    }
}

#[test]
fn structural_area_is_competitive_with_baseline() {
    // The paper's claim (Table V): structural approximations do not hurt
    // quality. Allow a small slack per benchmark, require parity on totals.
    let mut structural_total = 0usize;
    let mut baseline_total = 0usize;
    for stg in benchmarks::synthesizable_suite() {
        let s = synthesize(&stg, &SynthesisOptions::default()).unwrap();
        let b = synthesize_state_based(&stg, BaselineFlavor::ExcitationExact, 1_000_000).unwrap();
        structural_total += s.literal_area;
        baseline_total += b.literal_area;
    }
    assert!(
        structural_total <= baseline_total,
        "structural {structural_total} must not exceed baseline {baseline_total} in total"
    );
}

#[test]
fn mapped_area_correlates_with_literal_area() {
    let mut total_lit = 0usize;
    let mut total_mapped = 0usize;
    for stg in benchmarks::synthesizable_suite() {
        let syn = synthesize(&stg, &SynthesisOptions::default()).unwrap();
        let mapped = map_circuit(&syn.circuit);
        // A signal implemented as a bare wire (single literal) maps to zero
        // cells; anything bigger must produce cells.
        let wires_only = syn
            .results
            .iter()
            .all(|r| r.implementation.literal_area() <= 1);
        assert!(mapped.area > 0 || wires_only, "{}", stg.name());
        total_lit += syn.literal_area;
        total_mapped += mapped.area;
    }
    assert!(total_mapped > 0 && total_lit > 0);
}
