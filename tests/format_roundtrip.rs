//! `.g` format round-trips: write_g ∘ parse_g is the identity on structure
//! and behaviour for every benchmark.

use sisyn::prelude::*;
use sisyn::stg::benchmarks;

#[test]
fn roundtrip_preserves_structure_and_behaviour() {
    for stg in benchmarks::synthesizable_suite() {
        let text = write_g(&stg);
        let back = parse_g(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", stg.name()));
        assert_eq!(stg.signal_count(), back.signal_count(), "{}", stg.name());
        assert_eq!(
            stg.net().transition_count(),
            back.net().transition_count(),
            "{}",
            stg.name()
        );
        assert_eq!(
            stg.net().place_count(),
            back.net().place_count(),
            "{}",
            stg.name()
        );
        // Behavioural equality: same number of reachable states and the
        // same set of reachable codes modulo the signal reordering that
        // write_g introduces (it groups .inputs/.outputs/.internal).
        let rg1 = ReachabilityGraph::build(stg.net(), 1_000_000).unwrap();
        let rg2 = ReachabilityGraph::build(back.net(), 1_000_000).unwrap();
        assert_eq!(rg1.state_count(), rg2.state_count(), "{}", stg.name());
        let enc1 = sisyn::stg::StateEncoding::compute(&stg, &rg1).unwrap();
        let enc2 = sisyn::stg::StateEncoding::compute(&back, &rg2).unwrap();
        // permutation: bit i of an original code goes to bit perm[i].
        let perm: Vec<usize> = stg
            .signals()
            .map(|s| back.signal_by_name(stg.signal_name(s)).unwrap().index())
            .collect();
        let permuted: std::collections::BTreeSet<Bits> = enc1
            .distinct_codes()
            .into_iter()
            .map(|code| {
                let mut out = Bits::zeros(code.len());
                for (i, &j) in perm.iter().enumerate() {
                    out.set(j, code.get(i));
                }
                out
            })
            .collect();
        assert_eq!(permuted, enc2.distinct_codes(), "{}", stg.name());
    }
}

#[test]
fn roundtrip_preserves_synthesis_result() {
    for stg in [benchmarks::vme_read_csc(), benchmarks::burst2()] {
        let back = parse_g(&write_g(&stg)).unwrap();
        let a = synthesize(&stg, &SynthesisOptions::default()).unwrap();
        let b = synthesize(&back, &SynthesisOptions::default()).unwrap();
        assert_eq!(a.literal_area, b.literal_area, "{}", stg.name());
    }
}
