//! Region explorer: reproduces the worked Tables I–IV of the paper on the
//! reconstructed Fig. 1 running example — signal regions, the concurrency
//! relation, marked-region cover cubes and the refined signal-region
//! approximations, side by side with the ground truth.
//!
//! Run with: `cargo run --example region_explorer`

use sisyn::prelude::*;
use sisyn::stg::{benchmarks, SignalRegions, StateEncoding};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stg = benchmarks::running_example();
    let net = stg.net();
    println!(
        "running example `{}` (reconstruction of the paper's Fig. 1)",
        stg.name()
    );
    println!(
        "signal order: {}",
        stg.signals()
            .map(|s| stg.signal_name(s).to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );

    // One session drives the whole walk-through: the reachability graph
    // (ground truth) and the structural context (the paper's tables) are
    // each computed once and shared by every step below.
    let engine = Engine::new(&stg).cap(100_000);

    // Ground truth (Table I analog): the regions of output d.
    let rg = engine.reachability()?;
    let enc = StateEncoding::compute(&stg, rg)?;
    println!(
        "\n== Table I: signal regions of d (ground truth, {} markings) ==",
        rg.state_count()
    );
    let d = stg.signal_by_name("d").expect("signal d");
    let regions = SignalRegions::compute(&stg, rg, d);
    for (i, &t) in regions.transitions.iter().enumerate() {
        let er: Vec<String> = regions.er[i]
            .iter_ones()
            .map(|s| enc.code(sisyn::petri::StateId(s as u32)).to_string())
            .collect();
        let qr: Vec<String> = regions.qr[i]
            .iter_ones()
            .map(|s| enc.code(sisyn::petri::StateId(s as u32)).to_string())
            .collect();
        println!(
            "  ER({}) = {{{}}}   QR = {{{}}}",
            stg.transition_display(t),
            er.join(", "),
            qr.join(", ")
        );
    }

    // Table II analog: signal concurrency relation of places.
    let ctx = engine.context()?;
    println!("\n== Table II: place x signal concurrency (structural) ==");
    for p in net.places() {
        let row: Vec<&str> = stg
            .signals()
            .map(|s| {
                if ctx.analysis.scr.place(p, s) {
                    stg.signal_name(s)
                } else {
                    ""
                }
            })
            .filter(|s| !s.is_empty())
            .collect();
        if !row.is_empty() {
            println!("  {} || {{{}}}", net.place_name(p), row.join(", "));
        }
    }

    // Table III analog: cover cubes of every place.
    println!("\n== Table III: marked-region cover cubes ==");
    for p in net.places() {
        println!("  cube({}) = {}", net.place_name(p), ctx.cubes.cube(p));
    }

    // Table IV analog: refined approximations for d.
    println!(
        "\n== Table IV: region approximations of d (after {} refinement rounds) ==",
        ctx.refinement_rounds
    );
    let sc = ctx.signal_covers(d);
    for (&t, cover) in sc.er.iter() {
        println!("  C({}) = {}", stg.transition_display(t), cover);
    }
    for (&t, cover) in sc.qr.iter() {
        println!("  QRcover({}) = {}", stg.transition_display(t), cover);
    }

    // Structural coding conflicts + the CSC verdict (Theorems 14/15).
    println!("\n== structural coding conflicts ==");
    for c in ctx.conflicts() {
        let (p, q) = c.places;
        println!(
            "  SM#{}: {} x {}",
            c.sm_index,
            net.place_name(p),
            net.place_name(q)
        );
    }
    println!("CSC verdict: {:?}", ctx.csc_verdict());

    // And the final circuit — synthesis reuses the cached context, the
    // verification the cached graph.
    let syn = engine.synthesize()?;
    println!(
        "\nsynthesized area: {} literal units; SI verified: {}",
        syn.literal_area,
        engine.verify(&syn.circuit)?.is_ok()
    );
    Ok(())
}
