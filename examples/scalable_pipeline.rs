//! The state-explosion demonstration (§IV, Tables VI/VII): synthesize
//! generalized C-latch bursts whose reachability graphs are astronomically
//! large — including the paper's headline "over 10^27 states" — purely
//! structurally, and show where the state-based baseline gives up.
//!
//! Run with: `cargo run --release --example scalable_pipeline`

use sisyn::core::BaselineError;
use sisyn::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>5} {:>12} {:>14} {:>14} {:>10}",
        "n", "|RG|", "structural", "state-based", "area"
    );
    for n in [4usize, 8, 16, 32, 64, 90] {
        let stg = sisyn::stg::generators::clatch(n);
        // |RG| = 2^(n+1), known analytically.
        let states = format!("2^{}", n + 1);

        // One session per workload; the baseline's reachability graph (the
        // whole cost of the state-based flow) is cached, so the
        // verification below rides on it for free.
        let engine = Engine::new(&stg).cap(200_000);

        let t0 = Instant::now();
        let syn = engine.synthesize()?;
        let structural = t0.elapsed();

        let t1 = Instant::now();
        let baseline = engine.synthesize_state_based(BaselineFlavor::ExcitationExact);
        let state_based = match baseline {
            Ok(_) => format!("{:.1?}", t1.elapsed()),
            Err(BaselineError::StateExplosion(_)) => "explodes".to_string(),
            Err(e) => format!("error: {e}"),
        };

        println!(
            "{:>5} {:>12} {:>14} {:>14} {:>10}",
            n,
            states,
            format!("{:.1?}", structural),
            state_based,
            syn.literal_area
        );

        // The synthesized C-element is verified on sizes the oracle can
        // still reach — over the graph the baseline already built.
        if n <= 10 {
            assert!(engine.verify(&syn.circuit)?.is_ok());
            assert_eq!(engine.reach_build_count(), 1);
        }
    }
    println!("\nn = 90 gives 2^91 = 2.5e27 reachable markings -- the paper's");
    println!("\"over 10^27 states\" regime -- synthesized in milliseconds structurally.");
    Ok(())
}
