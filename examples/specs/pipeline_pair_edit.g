# One-signal edit of pipeline_pair.g: component 1 (a/x) is identical,
# component 2 reverses who leads the b/y handshake — the same four
# (b,y) codes are traversed, but y's excitation regions move (y = ~b
# instead of y = b). A serve-side resubmission must re-derive y's
# cover but reuse x's.
.model pipeline_pair
.inputs a b
.outputs x y
.graph
a+ x+
x+ a-
a- x-
x- a+
y+ b+
b+ y-
y- b-
b- y+
.marking { <x-,a+> <b-,y+> }
.end
