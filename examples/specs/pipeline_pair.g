# Two independent handshake components in one specification.
# Component 1 (a/x) is untouched by the _edit variant; component 2
# (b/y) is re-sequenced there over the same four states, so y's
# excitation regions move while x's are bit-identical. Used by the
# serve cache tests and the CI smoke step to show per-signal cover
# reuse across a one-signal edit.
.model pipeline_pair
.inputs a b
.outputs x y
.graph
a+ x+
x+ a-
a- x-
x- a+
b+ y+
y+ b-
b- y-
y- b+
.marking { <x-,a+> <y-,b+> }
.end
