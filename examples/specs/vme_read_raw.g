.model vme_read
.inputs dsr ldtack
.outputs lds d dtack
.graph
dsr+ lds+
lds+ ldtack+
ldtack+ d+
d+ dtack+
dtack+ dsr-
dsr- d-
d- dtack- lds-
lds- ldtack-
ldtack- lds+
dtack- dsr+
.marking { <dtack-,dsr+> <ldtack-,lds+> }
.end
