//! Writes a generator spec to a file — the bridge between the
//! programmatic benchmark families and the `sisyn` CLI, used by the CI
//! smoke steps to materialize specs on demand: STG families as `.g`
//! (e.g. a `clatch` whose 2^(n+1) state space is far too large to verify
//! within a tiny `--timeout`) and CFSM protocol families as `.proto`
//! for `sisyn deadlock`.
//!
//! Run with:
//! `cargo run --release --example gen_specs -- clatch 20 /tmp/clatch20.g`
//! `cargo run --release --example gen_specs -- dining 3 /tmp/dining3.proto`

use sisyn::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let (family, n, out) = match (args.next(), args.next(), args.next()) {
        (Some(f), Some(n), Some(o)) => (f, n.parse::<usize>()?, o),
        _ => {
            eprintln!(
                "usage: gen_specs <clatch|muller|sequencer|ring|pipeline|fork_join|dining> N OUT"
            );
            std::process::exit(2);
        }
    };
    // CFSM protocol families emit canonical `.proto` text.
    let proto = match family.as_str() {
        "ring" => Some(sisyn::proto::ring(n)),
        "pipeline" => Some(sisyn::proto::pipeline(n)),
        "fork_join" => Some(sisyn::proto::fork_join(n)),
        "dining" => Some(sisyn::proto::dining(n)),
        _ => None,
    };
    if let Some(sys) = proto {
        std::fs::write(&out, write_proto(&sys))?;
        eprintln!(
            "wrote {} ({} modules, {} channels) to {out}",
            sys.name(),
            sys.modules().len(),
            sys.channels().len()
        );
        return Ok(());
    }
    let stg = match family.as_str() {
        "clatch" => sisyn::stg::generators::clatch(n),
        "muller" => sisyn::stg::generators::muller_pipeline(n),
        "sequencer" => sisyn::stg::generators::sequencer(n),
        other => {
            eprintln!(
                "unknown family {other:?} (expected clatch, muller, sequencer, \
                 ring, pipeline, fork_join or dining)"
            );
            std::process::exit(2);
        }
    };
    std::fs::write(&out, write_g(&stg))?;
    eprintln!(
        "wrote {} ({} signals) to {out}",
        stg.name(),
        stg.signal_count()
    );
    Ok(())
}
