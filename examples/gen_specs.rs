//! Writes a generator STG to a `.g` file — the bridge between the
//! programmatic benchmark families and the `sisyn` CLI, used by the CI
//! timeout-smoke step to materialize a spec whose state space (2^(n+1)
//! for `clatch`) is far too large to verify within a tiny `--timeout`.
//!
//! Run with:
//! `cargo run --release --example gen_specs -- clatch 20 /tmp/clatch20.g`

use sisyn::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let (family, n, out) = match (args.next(), args.next(), args.next()) {
        (Some(f), Some(n), Some(o)) => (f, n.parse::<usize>()?, o),
        _ => {
            eprintln!("usage: gen_specs <clatch|muller|sequencer> N OUT.g");
            std::process::exit(2);
        }
    };
    let stg = match family.as_str() {
        "clatch" => sisyn::stg::generators::clatch(n),
        "muller" => sisyn::stg::generators::muller_pipeline(n),
        "sequencer" => sisyn::stg::generators::sequencer(n),
        other => {
            eprintln!("unknown family {other:?} (expected clatch, muller or sequencer)");
            std::process::exit(2);
        }
    };
    std::fs::write(&out, write_g(&stg))?;
    eprintln!(
        "wrote {} ({} signals) to {out}",
        stg.name(),
        stg.signal_count()
    );
    Ok(())
}
