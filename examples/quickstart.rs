//! Quickstart: parse an STG from the `.g` format, synthesize a
//! speed-independent circuit structurally, print the equations and verify
//! the result.
//!
//! Run with: `cargo run --example quickstart`

use sisyn::prelude::*;

const SPEC: &str = "\
.model quickstart
.inputs req
.outputs ack done
.graph
req+ ack+
ack+ done+
done+ req-
req- ack-
ack- done-
done- req+
.marking { <done-,req+> }
.end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse the specification.
    let stg = parse_g(SPEC)?;
    println!(
        "model `{}`: {} signals, {} transitions, {} places",
        stg.name(),
        stg.signal_count(),
        stg.net().transition_count(),
        stg.net().place_count()
    );

    // 2. Structural consistency (Fig. 9 of the paper) -- no state space built.
    let analysis = StgAnalysis::analyze(&stg)?;
    for t in stg.net().transitions() {
        let next: Vec<String> = analysis
            .next_of(t)
            .iter()
            .map(|&u| stg.transition_display(u))
            .collect();
        println!(
            "  next({}) = {{{}}}",
            stg.transition_display(t),
            next.join(", ")
        );
    }

    // 3. Open a synthesis session and run the flow. The `Engine` caches
    //    every shared artifact, so the verification steps below reuse one
    //    reachability graph instead of rebuilding it per call.
    let engine = Engine::new(&stg).cap(100_000);
    let syn = engine.synthesize()?;
    println!(
        "\nsynthesized {} signals, area = {} literal units",
        syn.results.len(),
        syn.literal_area
    );
    for r in &syn.results {
        let name = stg.signal_name(r.signal);
        match &r.implementation.kind {
            ImplKind::Combinational { cover, inverted } => {
                println!("  {name} = {}{cover}", if *inverted { "NOT " } else { "" });
            }
            ImplKind::CLatch { set, reset } => {
                for (i, c) in set.iter().enumerate() {
                    println!("  {name}.set[{i}]   = {c}");
                }
                for (i, c) in reset.iter().enumerate() {
                    println!("  {name}.reset[{i}] = {c}");
                }
            }
            ImplKind::GcLatch { set, reset } => {
                println!("  {name} = gC(set: {set}, reset: {reset})");
            }
            ImplKind::GatedLatch { data, control } => {
                println!("  {name} = latch(data: {data}, en: {control})");
            }
        }
    }

    // 4. Map onto the cell library.
    let mapped = map_circuit(&syn.circuit);
    println!(
        "\nmapped area = {} transistor pairs over {} cells",
        mapped.area,
        mapped.cells.len()
    );

    // 5. Verify speed independence against the specification — both
    //    checks run over the session's cached reachability graph.
    let report = engine.verify(&syn.circuit)?;
    let conform = engine.check_conformance(&syn.circuit)?;
    println!(
        "\nverification: functional+monotonic {}, conformance {} ({} product states)",
        if report.is_ok() { "OK" } else { "FAILED" },
        if conform.is_ok() { "OK" } else { "FAILED" },
        conform.states_explored
    );
    assert!(report.is_ok() && conform.is_ok());
    assert_eq!(engine.reach_build_count(), 1); // one graph served both oracles
    Ok(())
}
