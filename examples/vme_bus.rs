//! The VME bus controller walk-through: CSC conflict detection on the raw
//! specification, then synthesis of the CSC-resolved version under all
//! three architectures of Fig. 3, with verification.
//!
//! Run with: `cargo run --example vme_bus`

use sisyn::core::SynthesisError;
use sisyn::prelude::*;
use sisyn::stg::benchmarks;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The raw VME read-cycle controller has a genuine CSC conflict: two
    // markings share the code 11100 but enable different outputs (d+ in the
    // request phase, lds- in the release phase). The structural flow must
    // reject it.
    let raw = benchmarks::vme_read_raw();
    let raw_engine = Engine::new(&raw);
    match raw_engine.synthesize() {
        Err(SynthesisError::CscViolationPossible { places }) => {
            println!(
                "raw VME rejected: CSC cannot be established ({} witness places)",
                places.len()
            );
        }
        other => panic!("expected a CSC rejection, got {other:?}"),
    }

    // The same session can search for the state-signal insertion
    // automatically (reusing its cached structural context):
    match raw_engine.resolve_csc(50_000) {
        Some((repaired, plan)) => {
            println!(
                "automatic CSC resolution found: split {} / {} (+{} wait arc(s))",
                repaired.net().place_count(),
                repaired.net().transition_count(),
                plan.rise_waits.len()
            );
            let syn = synthesize(&repaired, &SynthesisOptions::default())?;
            println!(
                "  repaired spec synthesizes to {} literal units",
                syn.literal_area
            );
        }
        None => println!("automatic CSC resolution found nothing in budget"),
    }

    // Insert the state signal csc0 (the standard resolution) and retry.
    // One session serves all three architectures: the structural context
    // is shared across the sweep and the reachability graph behind the
    // six verification calls is built exactly once.
    let fixed = benchmarks::vme_read_csc();
    let engine = Engine::new(&fixed).cap(200_000);
    println!("\nwith csc0 inserted:");
    for arch in [
        Architecture::ComplexGate,
        Architecture::ExcitationFunction,
        Architecture::PerRegion,
    ] {
        let syn = engine.synthesize_with(&SynthesisOptions {
            architecture: arch,
            stages: MinimizeStages::full(),
            ..Default::default()
        })?;
        let mapped = map_circuit(&syn.circuit);
        let ok =
            engine.verify(&syn.circuit)?.is_ok() && engine.check_conformance(&syn.circuit).is_ok();
        println!(
            "  {:?}: {} literal units, {} transistor pairs, SI verification {}",
            arch,
            syn.literal_area,
            mapped.area,
            if ok { "OK" } else { "FAILED" }
        );
        assert!(ok);
    }

    // Show the final equations of the default architecture.
    let syn = engine.synthesize()?;
    assert_eq!(engine.reach_build_count(), 1); // shared across the sweep
    println!("\nfinal implementation (complex gate per excitation function):");
    println!(
        "  signal order: {}",
        fixed
            .signals()
            .map(|s| fixed.signal_name(s).to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );
    for r in &syn.results {
        let name = fixed.signal_name(r.signal);
        match &r.implementation.kind {
            ImplKind::Combinational { cover, inverted } => {
                println!("  {name} = {}{cover}", if *inverted { "NOT " } else { "" })
            }
            ImplKind::CLatch { set, reset } => {
                let s: Vec<String> = set.iter().map(|c| c.to_string()).collect();
                let r2: Vec<String> = reset.iter().map(|c| c.to_string()).collect();
                println!(
                    "  {name}: C-latch set = {} ; reset = {}",
                    s.join(" | "),
                    r2.join(" | ")
                )
            }
            ImplKind::GcLatch { set, reset } => {
                println!("  {name} = gC({set} ; {reset})")
            }
            ImplKind::GatedLatch { data, control } => {
                println!("  {name} = latch(data {data} ; en {control})")
            }
        }
    }
    Ok(())
}
